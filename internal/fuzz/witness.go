package fuzz

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// WriteWitness persists a divergence into dir as three artifacts and
// returns their paths:
//
//   - <stem>.workload.txt — the canonical workload text,
//   - <stem>.trace.jsonl — the diverging engine's protocol-event trace
//     in the observability layer's JSONL format (the same witness
//     format the model checker emits),
//   - <stem>_test.go.txt — a ready-to-paste Go regression test.
//
// engines must be the set the divergence was found with; the trace is
// recorded by re-running the diverging engine, which is deterministic.
func WriteWitness(dir string, d *Divergence, engines []NamedEngine) ([]string, error) {
	w := d.Workload
	stem := fmt.Sprintf("fuzz-witness-%s-seed%x-%s", w.Name, w.Seed, d.Engine)
	var paths []string
	write := func(name, content string) error {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			return err
		}
		paths = append(paths, p)
		return nil
	}
	if err := write(stem+".workload.txt", d.Error()+"\n\n"+w.Canon()); err != nil {
		return nil, err
	}
	var eng *NamedEngine
	for i := range engines {
		if engines[i].Name == d.Engine {
			eng = &engines[i]
		}
	}
	if eng != nil {
		var sb strings.Builder
		if err := TraceWitness(w, *eng).WriteJSONL(&sb); err != nil {
			return nil, err
		}
		if err := write(stem+".trace.jsonl", sb.String()); err != nil {
			return nil, err
		}
	}
	if err := write(stem+"_test.go.txt", RegressionTest(d)); err != nil {
		return nil, err
	}
	return paths, nil
}

// RegressionTest renders a self-contained Go test reproducing the
// divergence — paste it into internal/fuzz as a _test.go file.
func RegressionTest(d *Divergence) string {
	w := d.Workload
	var sb strings.Builder
	fmt.Fprintf(&sb, `package fuzz

// Regression test for a differential divergence found by the fuzzer:
//   %s
// Generated from seed %#x (generator %q); the workload below is the
// minimized reproduction.

import (
	"testing"

	"dircc/internal/coherent"
)

func TestRegression_%s_seed%x(t *testing.T) {
	w := %s
	if d, err := RunDifferential(w, AllEngines()); err != nil {
		t.Fatal(err)
	} else if d != nil {
		t.Fatalf("divergence: %%s", d)
	}
}
`, d.Error(), w.Seed, w.Name, identifier(w.Name), w.Seed, goLiteral(w))
	return sb.String()
}

// identifier strips non-identifier characters from a generator name.
func identifier(name string) string {
	return strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			return r
		}
		return '_'
	}, name)
}

// goLiteral renders w as a Go composite literal.
func goLiteral(w *Workload) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "&Workload{\n\t\tName: %q, Seed: %#x,\n\t\tProcs: %d, Blocks: %d, CacheLines: %d,\n\t\tPhases: []Phase{\n",
		w.Name, w.Seed, w.Procs, w.Blocks, w.CacheLines)
	for _, ph := range w.Phases {
		sb.WriteString("\t\t\t{")
		if ph.ReadOnly {
			sb.WriteString("ReadOnly: true, ")
		}
		sb.WriteString("Ops: []Op{\n")
		for _, op := range ph.Ops {
			kind := [...]string{"OpRead", "OpWrite", "OpReplace"}[op.Kind]
			fmt.Fprintf(&sb, "\t\t\t\t{Node: %d, Kind: %s, Block: coherent.BlockID(%d)", op.Node, kind, op.Block)
			if op.Kind == OpWrite {
				fmt.Fprintf(&sb, ", Value: %#x", op.Value)
			}
			sb.WriteString("},\n")
		}
		sb.WriteString("\t\t\t}},\n")
	}
	sb.WriteString("\t\t},\n\t}")
	return sb.String()
}
