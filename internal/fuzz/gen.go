package fuzz

import (
	"fmt"
	"math/rand"

	"dircc/internal/coherent"
)

// The generator catalog: adversarial sharing patterns beyond the SPLASH
// applications, each a pure function of (seed, procs). Every workload
// ends with a read-only audit phase whose values feed the cross-engine
// read digest, and every write value obeys the (phase, block) rule (see
// the package comment) so racing writers stay comparable.

// Generator is one named workload family.
type Generator struct {
	Name string
	New  func(seed uint64, procs int) *Workload
}

// Generators returns the catalog in canonical order: the frozen
// seed catalog first, then the families with their own drivers.
func Generators() []Generator {
	return append(seedGenerators(), Generator{"chain-surgery", ChainSurgery})
}

// seedGenerators is the catalog ForSeed draws from. It is FROZEN: every
// committed regression seed (corpus files, TestRegressionSeeds, the
// model-checker grid provenance comments) decodes its generator as an
// index into this slice, so appending here would silently remap them
// all. New families get their own smoke loops and fuzz targets instead
// (see chain-surgery).
func seedGenerators() []Generator {
	return []Generator{
		{"hotspot", Hotspot},
		{"migratory", Migratory},
		{"producer-consumer", ProducerConsumer},
		{"false-sharing", FalseSharing},
		{"replacement-storm", ReplacementStorm},
		{"random-mix", RandomMix},
	}
}

// Generate builds the named family's workload, or errors on an unknown
// name (the cmd/stress -gen flag).
func Generate(name string, seed uint64, procs int) (*Workload, error) {
	for _, g := range Generators() {
		if g.Name == name {
			return g.New(seed, procs), nil
		}
	}
	return nil, fmt.Errorf("fuzz: unknown generator %q (have %s)", name, GeneratorNames())
}

// GeneratorNames returns the catalog names, comma-separated.
func GeneratorNames() string {
	s := ""
	for i, g := range Generators() {
		if i > 0 {
			s += ","
		}
		s += g.Name
	}
	return s
}

// ForSeed derives a complete workload from a bare seed: the generator,
// the machine size and all parameters are drawn from the seed, so the
// native fuzz targets and the soak loop explore the whole catalog from
// a single uint64. Machine sizes are weighted toward the small end so
// a corpus run stays fast, with a tail up to P=32.
func ForSeed(seed uint64) *Workload {
	rng := rngFor(seed, 0)
	procs := []int{4, 4, 8, 8, 8, 16, 16, 32}[rng.Intn(8)]
	gens := seedGenerators()
	return gens[rng.Intn(len(gens))].New(seed, procs)
}

// ChainSurgeryForSeed derives a chain-surgery workload from a bare
// seed, the family's analogue of ForSeed for its own smoke loop and
// native fuzz target (the seed catalog is frozen, so the family cannot
// join ForSeed).
func ChainSurgeryForSeed(seed uint64) *Workload {
	rng := rngFor(seed, 0)
	procs := []int{4, 4, 8, 8, 8, 16}[rng.Intn(6)]
	return ChainSurgery(seed, procs)
}

// rngFor builds the deterministic stream for (seed, stream).
func rngFor(seed, stream uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(splitmix64(seed + stream*0x9e3779b97f4a7c15))))
}

// splitmix64 is the canonical seed scrambler.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// valueOf is the (phase, block) write-value rule.
func valueOf(seed uint64, phase int, b coherent.BlockID) uint64 {
	return splitmix64(seed ^ uint64(phase)*0xa24baed4963ee407 ^ uint64(b)*0x9fb21c651e98df25)
}

// audit appends the read-only audit phase: every node re-reads a
// deterministic sample of blocks, so a stale copy an invalidation wave
// missed surfaces as a read-digest divergence (and as a monitor
// violation on the hit path).
func audit(w *Workload, rng *rand.Rand) {
	per := w.Blocks
	if per > 8 {
		per = 8
	}
	ph := Phase{ReadOnly: true}
	for n := 0; n < w.Procs; n++ {
		for i := 0; i < per; i++ {
			ph.Ops = append(ph.Ops, Op{Node: n, Kind: OpRead, Block: coherent.BlockID(rng.Intn(w.Blocks))})
		}
	}
	w.Phases = append(w.Phases, ph)
}

// Hotspot hammers one hot block: a few writers per phase race on it
// (idempotent values) while everyone else polls it, with background
// traffic on cold blocks. Exercises wide invalidation waves and
// directory-gate contention at the hot home.
func Hotspot(seed uint64, procs int) *Workload {
	rng := rngFor(seed, 1)
	w := &Workload{Name: "hotspot", Seed: seed, Procs: procs, Blocks: 4 + rng.Intn(12)}
	const hot = coherent.BlockID(0)
	phases := 2 + rng.Intn(3)
	for p := 0; p < phases; p++ {
		var ph Phase
		writers := 1 + rng.Intn(3)
		for i := 0; i < writers; i++ {
			n := rng.Intn(procs)
			ph.Ops = append(ph.Ops, Op{Node: n, Kind: OpWrite, Block: hot, Value: valueOf(seed, p, hot)})
		}
		for n := 0; n < procs; n++ {
			polls := 1 + rng.Intn(3)
			for i := 0; i < polls; i++ {
				ph.Ops = append(ph.Ops, Op{Node: n, Kind: OpRead, Block: hot})
			}
			cold := coherent.BlockID(1 + rng.Intn(w.Blocks-1))
			if rng.Intn(3) == 0 {
				ph.Ops = append(ph.Ops, Op{Node: n, Kind: OpWrite, Block: cold, Value: valueOf(seed, p, cold)})
			} else {
				ph.Ops = append(ph.Ops, Op{Node: n, Kind: OpRead, Block: cold})
			}
		}
		w.Phases = append(w.Phases, ph)
	}
	audit(w, rng)
	return w
}

// Migratory hands each block's ownership around the machine: in phase
// p, node (b+p) mod procs reads then rewrites block b. Exercises the
// exclusive hand-off path (recall, writeback, re-grant) under load.
func Migratory(seed uint64, procs int) *Workload {
	rng := rngFor(seed, 2)
	w := &Workload{Name: "migratory", Seed: seed, Procs: procs, Blocks: procs + rng.Intn(procs)}
	phases := 3 + rng.Intn(3)
	for p := 0; p < phases; p++ {
		var ph Phase
		for b := 0; b < w.Blocks; b++ {
			n := (b + p) % procs
			ph.Ops = append(ph.Ops,
				Op{Node: n, Kind: OpRead, Block: coherent.BlockID(b)},
				Op{Node: n, Kind: OpWrite, Block: coherent.BlockID(b), Value: valueOf(seed, p, coherent.BlockID(b))})
		}
		w.Phases = append(w.Phases, ph)
	}
	audit(w, rng)
	return w
}

// ProducerConsumer alternates write and read phases across two node
// groups: producers fill disjoint block ranges, then consumers read
// them in a read-only (digest-checked) phase. The classic pattern for
// catching a consumer's stale copy surviving the producers' waves.
func ProducerConsumer(seed uint64, procs int) *Workload {
	rng := rngFor(seed, 3)
	half := procs / 2
	perProd := 2 + rng.Intn(3)
	w := &Workload{Name: "producer-consumer", Seed: seed, Procs: procs, Blocks: half * perProd}
	rounds := 2 + rng.Intn(2)
	for r := 0; r < rounds; r++ {
		var prod Phase
		for i := 0; i < half; i++ {
			for j := 0; j < perProd; j++ {
				b := coherent.BlockID(i*perProd + j)
				prod.Ops = append(prod.Ops, Op{Node: i, Kind: OpWrite, Block: b, Value: valueOf(seed, 2*r, b)})
			}
		}
		w.Phases = append(w.Phases, prod)
		cons := Phase{ReadOnly: true}
		for i := half; i < procs; i++ {
			src := rng.Intn(half)
			for j := 0; j < perProd; j++ {
				cons.Ops = append(cons.Ops, Op{Node: i, Kind: OpRead, Block: coherent.BlockID(src*perProd + j)})
			}
		}
		w.Phases = append(w.Phases, cons)
	}
	audit(w, rng)
	return w
}

// FalseSharing pairs nodes on adjacent blocks: each partner writes its
// own block and polls the neighbor's, so ownership of neighboring
// blocks ping-pongs through adjacent homes. (Blocks carry one word
// here, so the classic same-block word conflict maps to adjacent-block
// home and cache-set contention.)
func FalseSharing(seed uint64, procs int) *Workload {
	rng := rngFor(seed, 4)
	pairs := procs / 2
	w := &Workload{Name: "false-sharing", Seed: seed, Procs: procs, Blocks: 2 * pairs}
	phases := 2 + rng.Intn(3)
	for p := 0; p < phases; p++ {
		var ph Phase
		for i := 0; i < pairs; i++ {
			a, b := 2*i, 2*i+1
			ba, bb := coherent.BlockID(a), coherent.BlockID(b)
			reps := 1 + rng.Intn(2)
			for r := 0; r < reps; r++ {
				ph.Ops = append(ph.Ops,
					Op{Node: a, Kind: OpWrite, Block: ba, Value: valueOf(seed, p, ba)},
					Op{Node: a, Kind: OpRead, Block: bb},
					Op{Node: b, Kind: OpWrite, Block: bb, Value: valueOf(seed, p, bb)},
					Op{Node: b, Kind: OpRead, Block: ba})
			}
		}
		w.Phases = append(w.Phases, ph)
	}
	audit(w, rng)
	return w
}

// ReplacementStorm forces Replace_INV subtree teardown: tiny caches,
// every node walking a shared window wider than its cache, explicit
// replacements of just-read blocks, and a writer wave over the torn
// structure each phase. This is the pattern that kills
// replacement-handling mutants.
func ReplacementStorm(seed uint64, procs int) *Workload {
	rng := rngFor(seed, 5)
	lines := 1 + rng.Intn(2)
	blocks := lines*3 + rng.Intn(4)
	w := &Workload{Name: "replacement-storm", Seed: seed, Procs: procs, Blocks: blocks, CacheLines: lines}
	phases := 2 + rng.Intn(2)
	for p := 0; p < phases; p++ {
		var ph Phase
		for n := 0; n < procs; n++ {
			start := rng.Intn(blocks)
			walk := 2 + rng.Intn(3)
			for i := 0; i < walk; i++ {
				b := coherent.BlockID((start + i) % blocks)
				ph.Ops = append(ph.Ops, Op{Node: n, Kind: OpRead, Block: b})
				if rng.Intn(2) == 0 {
					ph.Ops = append(ph.Ops, Op{Node: n, Kind: OpReplace, Block: b})
				}
			}
		}
		writers := 1 + rng.Intn(2)
		for i := 0; i < writers; i++ {
			b := coherent.BlockID(rng.Intn(blocks))
			ph.Ops = append(ph.Ops, Op{Node: rng.Intn(procs), Kind: OpWrite, Block: b, Value: valueOf(seed, p, b)})
		}
		w.Phases = append(w.Phases, ph)
	}
	audit(w, rng)
	return w
}

// ChainSurgery aims concurrent surgery at a single sharing list: the
// whole machine attaches to one hot block through one-line caches,
// then a band of nodes cuts itself out mid-chain — half by explicit
// replacement, half by reading an alias block that evicts the hot line
// — and immediately re-attaches, while writers fire invalidation waves
// over the half-torn structure. Suffix teardown, forwards aimed at
// dead incarnations, deferred re-attach installs and invalidation
// walks all collide on the same chain; this is the pattern that kills
// chain-splice and teardown-ordering mutants in the list schemes (and
// the subtree analogue in the trees).
func ChainSurgery(seed uint64, procs int) *Workload {
	rng := rngFor(seed, 7)
	blocks := 2 + rng.Intn(3)
	w := &Workload{Name: "chain-surgery", Seed: seed, Procs: procs, Blocks: blocks, CacheLines: 1}
	const hot = coherent.BlockID(0)
	phases := 2 + rng.Intn(2)
	for p := 0; p < phases; p++ {
		var ph Phase
		// Build the chain: every node attaches to the hot block.
		for n := 0; n < procs; n++ {
			ph.Ops = append(ph.Ops, Op{Node: n, Kind: OpRead, Block: hot})
		}
		// Surgery: a band of nodes drops out mid-chain and re-attaches.
		cut := 1 + rng.Intn(procs/2+1)
		for i := 0; i < cut; i++ {
			n := rng.Intn(procs)
			if rng.Intn(2) == 0 {
				ph.Ops = append(ph.Ops, Op{Node: n, Kind: OpReplace, Block: hot})
			} else {
				alias := coherent.BlockID(1 + rng.Intn(blocks-1))
				ph.Ops = append(ph.Ops, Op{Node: n, Kind: OpRead, Block: alias})
			}
			ph.Ops = append(ph.Ops, Op{Node: n, Kind: OpRead, Block: hot})
		}
		// Writers tear the half-surgered list down while it re-forms.
		writers := 1 + rng.Intn(2)
		for i := 0; i < writers; i++ {
			ph.Ops = append(ph.Ops, Op{Node: rng.Intn(procs), Kind: OpWrite, Block: hot, Value: valueOf(seed, p, hot)})
		}
		w.Phases = append(w.Phases, ph)
	}
	audit(w, rng)
	return w
}

// RandomMix is the unstructured fallback: every node issues a random
// run of reads, writes and replacements each phase, sometimes through
// a tiny cache. Breadth over focus.
func RandomMix(seed uint64, procs int) *Workload {
	rng := rngFor(seed, 6)
	w := &Workload{Name: "random-mix", Seed: seed, Procs: procs, Blocks: 4 + rng.Intn(20)}
	if rng.Intn(3) == 0 {
		w.CacheLines = 1 + rng.Intn(3)
	}
	phases := 2 + rng.Intn(3)
	for p := 0; p < phases; p++ {
		var ph Phase
		for n := 0; n < procs; n++ {
			ops := 3 + rng.Intn(5)
			for i := 0; i < ops; i++ {
				b := coherent.BlockID(rng.Intn(w.Blocks))
				switch rng.Intn(6) {
				case 0:
					ph.Ops = append(ph.Ops, Op{Node: n, Kind: OpWrite, Block: b, Value: valueOf(seed, p, b)})
				case 1:
					ph.Ops = append(ph.Ops, Op{Node: n, Kind: OpReplace, Block: b})
				default:
					ph.Ops = append(ph.Ops, Op{Node: n, Kind: OpRead, Block: b})
				}
			}
		}
		w.Phases = append(w.Phases, ph)
	}
	audit(w, rng)
	return w
}
