package fuzz

import (
	"errors"
	"fmt"

	"dircc/internal/check"
	"dircc/internal/coherent"
	"dircc/internal/obs"
	"dircc/internal/sim"
)

// Result is one engine's execution of a workload: everything the
// differential oracle compares, plus the per-engine failure (invariant
// violation, deadlock, livelock, panic) if the run did not survive.
type Result struct {
	Engine string
	// Mem is the final memory image of blocks [0, Blocks).
	Mem []uint64
	// ReadDigest folds every read value observed during read-only
	// phases, per node in program order, nodes in id order.
	ReadDigest uint64
	// Cycles is the simulated completion time (not compared — timing
	// is exactly what protocols are allowed to change).
	Cycles uint64
	// Err is the per-engine failure, nil for a clean run.
	Err error
}

// RunWorkload executes w on a fresh machine driven by eng's engine and
// samples check.Quiescent at every phase boundary. It never panics:
// engine bugs surface in Result.Err.
func RunWorkload(w *Workload, eng NamedEngine) *Result {
	return runWorkload(w, eng, nil)
}

// RunWorkloadSharded executes w on the time-windowed parallel kernel
// with the given shard count (and the runtime coherence monitor off —
// the checker's transport requires the sequential engine). Its Mem and
// ReadDigest must match RunWorkloadUnchecked on the same workload:
// that differential is the fuzz-level determinism oracle for the
// sharded engine.
func RunWorkloadSharded(w *Workload, eng NamedEngine, shards int) *Result {
	return runWorkloadOn(w, eng, nil, shards, false)
}

// RunWorkloadUnchecked is RunWorkload without the runtime coherence
// monitor — the sequential baseline RunWorkloadSharded results are
// compared against.
func RunWorkloadUnchecked(w *Workload, eng NamedEngine) *Result {
	return runWorkloadOn(w, eng, nil, 1, false)
}

// TraceWitness re-executes w on eng with the observability trace
// attached and returns the recorded protocol events — the same witness
// format the model checker emits (write with Trace.WriteJSONL).
func TraceWitness(w *Workload, eng NamedEngine) *obs.Trace {
	tr := obs.NewTrace()
	runWorkload(w, eng, &obs.Probe{Trace: tr})
	return tr
}

func runWorkload(w *Workload, eng NamedEngine, probe *obs.Probe) *Result {
	return runWorkloadOn(w, eng, probe, 1, true)
}

func runWorkloadOn(w *Workload, eng NamedEngine, probe *obs.Probe, shards int, checked bool) *Result {
	res := &Result{Engine: eng.Name}
	cfg := coherent.DefaultConfig(w.Procs)
	cfg.Check = checked
	cfg.MaxEvents = 50_000_000
	if w.CacheLines > 0 {
		cfg.CacheBytes = cfg.BlockBytes * w.CacheLines
		cfg.CacheSets = 1
	}
	m, err := coherent.NewShardedMachine(cfg, eng.New(), shards)
	if err != nil {
		res.Err = err
		return res
	}
	// Workloads address blocks directly rather than through Alloc; the
	// sharded kernel freezes the store at the allocation frontier, so
	// claim the workload's whole footprint up front. (Alloc is pure
	// bookkeeping — this cannot perturb the sequential baseline.)
	m.Alloc(uint64(w.Blocks) * uint64(cfg.BlockBytes))
	if probe != nil {
		m.AttachProbe(probe)
	}
	digests := make([]uint64, w.Procs)
	for pi, ph := range w.Phases {
		if err := runPhase(m, w, ph, digests); err != nil {
			res.Err = fmt.Errorf("phase %d: %w", pi, err)
			return res
		}
		if err := check.Quiescent(m, w.Blocks); err != nil {
			res.Err = fmt.Errorf("phase %d quiescence: %w", pi, err)
			return res
		}
	}
	res.Mem = make([]uint64, w.Blocks)
	for b := 0; b < w.Blocks; b++ {
		res.Mem[b] = m.Store.Value(coherent.BlockID(b))
	}
	for _, d := range digests {
		res.ReadDigest = res.ReadDigest*1099511628211 + d
	}
	res.Cycles = uint64(m.Now())
	return res
}

// runPhase launches one operation chain per participating node — each
// node issues its next op when the previous completes, so the chains
// race freely through the timed network — and drains the kernel to the
// phase's quiescence point. Panics from a broken engine and kernel
// event-budget exhaustion (livelock) become errors.
func runPhase(m *coherent.Machine, w *Workload, ph Phase, digests []uint64) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	perNode := make([][]Op, w.Procs)
	for _, op := range ph.Ops {
		perNode[op.Node] = append(perNode[op.Node], op)
	}
	addr := func(b coherent.BlockID) uint64 { return uint64(b) * uint64(m.Cfg.BlockBytes) }
	for n := range perNode {
		ops := perNode[n]
		if len(ops) == 0 {
			continue
		}
		node := coherent.NodeID(n)
		n := n
		var step func(i int)
		step = func(i int) {
			if i == len(ops) {
				return
			}
			op := ops[i]
			switch op.Kind {
			case OpRead:
				m.Access(node, addr(op.Block), false, 0, func(v uint64) {
					if ph.ReadOnly {
						digests[n] = digests[n]*31 + v
					}
					step(i + 1)
				})
			case OpWrite:
				m.Access(node, addr(op.Block), true, op.Value, func(uint64) { step(i + 1) })
			case OpReplace:
				m.ReplaceBlock(node, op.Block)
				// One-cycle yield: keeps the teardown racing the rest of
				// the phase instead of recursing synchronously.
				m.ScheduleAt(node, 1, func() { step(i + 1) })
			}
		}
		m.ScheduleAt(node, 0, func() { step(0) })
	}
	if err := m.RunKernel(); err != nil {
		if errors.Is(err, sim.ErrEventBudget) {
			return fmt.Errorf("livelock: %d kernel events without quiescing", m.Cfg.MaxEvents)
		}
		return err
	}
	if inFlight := m.Net.InFlight(); inFlight != 0 {
		return fmt.Errorf("%d messages still in flight after drain", inFlight)
	}
	return nil
}
