package fuzz

import (
	"strings"
	"testing"
)

// TestGeneratorDeterminism: every generator is a pure function of
// (seed, procs) — two invocations render byte-identical canonical
// text — and every generated workload is valid, sized as requested,
// and ends with the read-only audit phase the differential oracle
// relies on.
func TestGeneratorDeterminism(t *testing.T) {
	for _, g := range Generators() {
		for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
			for _, procs := range []int{4, 8, 32} {
				a, b := g.New(seed, procs), g.New(seed, procs)
				if a.Canon() != b.Canon() {
					t.Errorf("%s(%#x, %d) is not deterministic", g.Name, seed, procs)
				}
				if err := a.validate(); err != nil {
					t.Errorf("%s(%#x, %d): %v", g.Name, seed, procs, err)
				}
				if a.Procs != procs {
					t.Errorf("%s(%#x, %d): workload sized for %d procs", g.Name, seed, procs, a.Procs)
				}
				if last := a.Phases[len(a.Phases)-1]; !last.ReadOnly || len(last.Ops) == 0 {
					t.Errorf("%s(%#x, %d): missing the read-only audit phase", g.Name, seed, procs)
				}
			}
		}
	}
}

// TestWriteValueRule: within one workload, any two writes to the same
// (phase, block) pair must store the same value — the invariant that
// makes racing writers commute and the final memory image comparable
// across engines.
func TestWriteValueRule(t *testing.T) {
	for _, g := range Generators() {
		for _, seed := range []uint64{3, 99} {
			w := g.New(seed, 16)
			for pi, ph := range w.Phases {
				seen := map[int]uint64{}
				for _, op := range ph.Ops {
					if op.Kind != OpWrite {
						continue
					}
					if v, ok := seen[int(op.Block)]; ok && v != op.Value {
						t.Errorf("%s(%#x) phase %d block %d: values %#x and %#x", g.Name, seed, pi, op.Block, v, op.Value)
					}
					seen[int(op.Block)] = op.Value
				}
			}
		}
	}
}

// TestForSeed: the bare-seed entry point is deterministic and always
// yields a valid workload, across a wide seed sample.
func TestForSeed(t *testing.T) {
	for seed := uint64(0); seed < 64; seed++ {
		a, b := ForSeed(seed), ForSeed(seed)
		if a.Canon() != b.Canon() {
			t.Errorf("ForSeed(%d) is not deterministic", seed)
		}
		if err := a.validate(); err != nil {
			t.Errorf("ForSeed(%d): %v", seed, err)
		}
	}
}

// TestGenerate covers the name lookup used by cmd/stress -gen.
func TestGenerate(t *testing.T) {
	w, err := Generate("hotspot", 1, 8)
	if err != nil || w.Name != "hotspot" {
		t.Errorf("Generate(hotspot): %v, %v", w, err)
	}
	if _, err := Generate("no-such-generator", 1, 8); err == nil || !strings.Contains(err.Error(), "hotspot") {
		t.Errorf("unknown generator error should list the catalog, got %v", err)
	}
}

// TestValidate covers the workload rejection paths.
func TestValidate(t *testing.T) {
	base := func() *Workload {
		return &Workload{Name: "t", Procs: 2, Blocks: 1, Phases: []Phase{{Ops: []Op{{Node: 0, Kind: OpRead}}}}}
	}
	if err := base().validate(); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	for name, mut := range map[string]func(*Workload){
		"procs":         func(w *Workload) { w.Procs = 1 },
		"blocks":        func(w *Workload) { w.Blocks = 0 },
		"cachelines":    func(w *Workload) { w.CacheLines = -1 },
		"node-range":    func(w *Workload) { w.Phases[0].Ops[0].Node = 2 },
		"block-range":   func(w *Workload) { w.Phases[0].Ops[0].Block = 1 },
		"readonly-lies": func(w *Workload) { w.Phases[0].ReadOnly = true; w.Phases[0].Ops[0].Kind = OpWrite },
	} {
		w := base()
		mut(w)
		if err := w.validate(); err == nil {
			t.Errorf("%s: invalid workload accepted", name)
		}
		if _, err := RunDifferential(w, AllEngines()); err == nil {
			t.Errorf("%s: RunDifferential accepted an invalid workload", name)
		}
	}
	if _, err := RunDifferential(base(), AllEngines()[:1]); err == nil {
		t.Error("single-engine differential accepted")
	}
}
