package fuzz

import (
	"fmt"

	"dircc/internal/coherent"
	"dircc/internal/core"
	"dircc/internal/protocol/fullmap"
	"dircc/internal/protocol/limited"
	"dircc/internal/protocol/limitless"
	"dircc/internal/protocol/list"
	"dircc/internal/protocol/stp"
)

// NamedEngine is one differential participant. The slice order is
// semantic: the first entry is the oracle every other engine is
// compared against (full-map, whose directory is exact, in the
// default sets).
type NamedEngine struct {
	Name string
	New  func() coherent.Engine
}

// AllEngines returns the six-family differential set — one
// representative per protocol family of the repository, full-map
// first as the oracle.
func AllEngines() []NamedEngine {
	return []NamedEngine{
		{"fm", func() coherent.Engine { return fullmap.New() }},
		{"Dir2B", func() coherent.Engine { return limited.NewB(2) }},
		{"LimitLESS4", func() coherent.Engine { return limitless.New(4) }},
		{"sci", func() coherent.Engine { return list.NewSCI() }},
		{"stp", func() coherent.Engine { return stp.New() }},
		{"Dir4Tree2", func() coherent.Engine { return core.New(4, 2) }},
	}
}

// ChainEngines returns the chain-surgery set: the oracle plus every
// scheme whose sharing structure is a linked chain or tree — the ones
// concurrent mid-chain eviction, re-attach and invalidation surgery
// can structurally corrupt.
func ChainEngines() []NamedEngine {
	return []NamedEngine{
		{"fm", func() coherent.Engine { return fullmap.New() }},
		{"sci", func() coherent.Engine { return list.NewSCI() }},
		{"sll", func() coherent.Engine { return list.NewSLL() }},
		{"stp", func() coherent.Engine { return stp.New() }},
		{"Dir4Tree2", func() coherent.Engine { return core.New(4, 2) }},
	}
}

// TreeEngines returns the Dir_iTree_k-focused set: the oracle plus the
// tree scheme across pointer counts and arities (the configurations
// whose deep-tree behaviors live beyond the model checker's horizon).
func TreeEngines() []NamedEngine {
	return []NamedEngine{
		{"fm", func() coherent.Engine { return fullmap.New() }},
		{"Dir1Tree2", func() coherent.Engine { return core.New(1, 2) }},
		{"Dir2Tree2", func() coherent.Engine { return core.New(2, 2) }},
		{"Dir2Tree3", func() coherent.Engine { return core.New(2, 3) }},
		{"Dir4Tree4", func() coherent.Engine { return core.New(4, 4) }},
	}
}

// Divergence kinds.
const (
	// KindError: an engine failed outright — invariant violation at a
	// quiescence point, deadlock, livelock, or a panic.
	KindError = "error"
	// KindMem: final memory images differ from the oracle's.
	KindMem = "mem"
	// KindReadDigest: read-only-phase read values differ.
	KindReadDigest = "read-digest"
)

// Divergence is one differential failure: the workload, which engine
// broke ranks, and how.
type Divergence struct {
	Workload *Workload
	// Engine is the diverging engine's name; Oracle the reference.
	Engine, Oracle string
	// Kind is one of KindError, KindMem, KindReadDigest.
	Kind string
	// Detail is the human-readable specifics.
	Detail string
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("fuzz: workload %s (seed %#x): engine %s vs oracle %s: %s: %s",
		d.Workload.Name, d.Workload.Seed, d.Engine, d.Oracle, d.Kind, d.Detail)
}

// RunDifferential executes w under every engine and compares each
// result against the first (oracle) entry. It returns the first
// divergence in engine order — deterministically — or nil when every
// engine agrees; the error return is for unusable inputs, not protocol
// bugs.
func RunDifferential(w *Workload, engines []NamedEngine) (*Divergence, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	if len(engines) < 2 {
		return nil, fmt.Errorf("fuzz: differential run needs at least 2 engines, got %d", len(engines))
	}
	oracle := RunWorkload(w, engines[0])
	if oracle.Err != nil {
		return &Divergence{Workload: w, Engine: engines[0].Name, Oracle: engines[0].Name,
			Kind: KindError, Detail: oracle.Err.Error()}, nil
	}
	for _, eng := range engines[1:] {
		got := RunWorkload(w, eng)
		if d := compare(w, oracle, got); d != nil {
			return d, nil
		}
	}
	return nil, nil
}

// compare diffs one engine's result against the oracle's.
func compare(w *Workload, oracle, got *Result) *Divergence {
	d := &Divergence{Workload: w, Engine: got.Engine, Oracle: oracle.Engine}
	if got.Err != nil {
		d.Kind, d.Detail = KindError, got.Err.Error()
		return d
	}
	for b := range oracle.Mem {
		if got.Mem[b] != oracle.Mem[b] {
			d.Kind = KindMem
			d.Detail = fmt.Sprintf("final memory block %d = %#x, oracle has %#x", b, got.Mem[b], oracle.Mem[b])
			return d
		}
	}
	if got.ReadDigest != oracle.ReadDigest {
		d.Kind = KindReadDigest
		d.Detail = fmt.Sprintf("read-only-phase digest %#x, oracle has %#x", got.ReadDigest, oracle.ReadDigest)
		return d
	}
	return nil
}
