package lint

// allocguard turns the hot-path zero-allocation invariant into a static
// gate. Functions on the simulator's per-event hot path (the kernel
// event loop, the sharded intra-wave drain, network Send) are annotated
// with a `//dirccvet:hotpath` directive in their doc comment; allocguard
// runs the compiler's escape analysis (`go build -gcflags=-m=2`) over
// the packages containing annotated functions and reports every
// "escapes to heap" / "moved to heap" diagnostic that lands inside an
// annotated function's body. Unlike the alloc benchmarks (which only
// catch a regression when the right benchmark runs), this names the
// offending line at compile time.
//
// A known, deliberate allocation (e.g. the per-message delivery closure
// in Network.Send) is suppressed the usual way:
//
//	//dirccvet:allow allocguard one closure per in-flight message
//
// The returned diagnostics flow through RunAnalyzers' suppression and
// stale-allow accounting like any other analyzer's.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func positionAt(file string, line, col int) token.Position {
	return token.Position{Filename: file, Line: line, Column: col}
}

// AllocGuardName is the analyzer name allocguard diagnostics carry
// (used in //dirccvet:allow lists).
const AllocGuardName = "allocguard"

// hotpathDirective marks a function whose body must not heap-allocate.
const hotpathDirective = "//dirccvet:hotpath"

type hotpathFunc struct {
	name       string
	file       string // absolute path
	start, end int    // line range of the declaration
}

// HotpathFuncs returns the annotated functions in pkgs, sorted by
// position. Exported for cmd/dirccvet's verbose listing.
func HotpathFuncs(pkgs []*Package) []string {
	var out []string
	for _, pkg := range pkgs {
		for _, hf := range hotpathFuncs(pkg) {
			out = append(out, fmt.Sprintf("%s:%d: %s", hf.file, hf.start, hf.name))
		}
	}
	sort.Strings(out)
	return out
}

func hotpathFuncs(pkg *Package) []hotpathFunc {
	var out []hotpathFunc
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			marked := false
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(strings.TrimSpace(c.Text), hotpathDirective) {
					marked = true
					break
				}
			}
			if !marked {
				continue
			}
			start := pkg.Fset.Position(fd.Pos())
			end := pkg.Fset.Position(fd.End())
			name := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				if tn := recvTypeName(fd.Recv.List[0].Type); tn != "" {
					name = tn + "." + name
				}
			}
			out = append(out, hotpathFunc{
				name:  name,
				file:  start.Filename,
				start: start.Line,
				end:   end.Line,
			})
		}
	}
	return out
}

// escapeLine matches one compiler escape-analysis diagnostic:
// "path/file.go:12:6: message". Flow-explanation lines from -m=2 also
// match the shape but are filtered by message content below.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

// RunAllocGuard builds the packages that contain //dirccvet:hotpath
// annotations with escape analysis enabled and returns one diagnostic
// per heap escape inside an annotated function. The returned
// diagnostics are NOT yet filtered by //dirccvet:allow — pass them to
// RunAnalyzers as extra diagnostics for that.
func RunAllocGuard(pkgs []*Package) ([]Diagnostic, int, error) {
	byFile := map[string][]hotpathFunc{}
	pathSet := map[string]bool{}
	total := 0
	for _, pkg := range pkgs {
		hfs := hotpathFuncs(pkg)
		if len(hfs) == 0 {
			continue
		}
		total += len(hfs)
		pathSet[pkg.ImportPath] = true
		for _, hf := range hfs {
			byFile[hf.file] = append(byFile[hf.file], hf)
		}
	}
	if len(pathSet) == 0 {
		return nil, 0, nil
	}
	var paths []string
	for p := range pathSet {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	root, err := moduleRoot()
	if err != nil {
		return nil, total, err
	}
	args := append([]string{"build", "-gcflags=-m=2"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, total, fmt.Errorf("allocguard: go build failed: %v\n%s", err, stderr.String())
	}

	var out []Diagnostic
	for _, line := range strings.Split(stderr.String(), "\n") {
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		if strings.Contains(msg, "does not escape") {
			continue
		}
		// A constant string escaping into an interface (panic("...")) is
		// static data, not a runtime allocation; ignore it.
		if strings.HasPrefix(msg, `"`) {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, file)
		}
		lineNo := atoiSafe(m[2])
		for _, hf := range byFile[file] {
			if lineNo < hf.start || lineNo > hf.end {
				continue
			}
			out = append(out, Diagnostic{
				Pos:      positionAt(file, lineNo, atoiSafe(m[3])),
				Analyzer: AllocGuardName,
				Message: fmt.Sprintf("hotpath %s allocates: %s", hf.name,
					strings.TrimSuffix(msg, ":")),
			})
			break
		}
	}
	return out, total, nil
}

func moduleRoot() (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("allocguard: go list -m: %v\n%s", err, stderr.String())
	}
	return strings.TrimSpace(stdout.String()), nil
}

func atoiSafe(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}
