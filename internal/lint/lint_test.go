package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// The testdata harness mirrors go/analysis's analysistest: each
// analyzer has a testdata/<name> package whose files carry
// `// want "regex"` comments on the lines where a finding is expected.
// The harness runs the analyzer and diffs findings against
// expectations in both directions.

var wantRx = regexp.MustCompile("want `([^`]*)`")

func runTestdata(t *testing.T, a *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", a.Name)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no testdata under %s: %v", dir, err)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			path, _ := strconv.Unquote(spec.Path.Value)
			imports[path] = true
		}
	}

	// Resolve the fixture's imports through the real build system.
	patterns := make([]string, 0, len(imports))
	for p := range imports {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	var imp types.Importer
	if len(patterns) > 0 {
		entries, err := goList(true, patterns...)
		if err != nil {
			t.Fatal(err)
		}
		imp = exportImporter(fset, entries)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check("dircc/internal/lint/"+dir, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}

	pkg := &Package{ImportPath: tpkg.Path(), Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})

	type key struct {
		file string
		line int
	}
	got := map[key][]string{}
	for _, d := range diags {
		k := key{filepath.Base(d.Pos.Filename), d.Pos.Line}
		got[k] = append(got[k], d.Message)
	}
	want := map[key][]*regexp.Regexp{}
	for i, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRx.FindAllStringSubmatch(c.Text, -1) {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", m[1], err)
					}
					pos := fset.Position(c.Pos())
					k := key{filepath.Base(names[i]), pos.Line}
					want[k] = append(want[k], rx)
				}
			}
		}
	}

	for k, rxs := range want {
		msgs := got[k]
		for _, rx := range rxs {
			matched := false
			for _, msg := range msgs {
				if rx.MatchString(msg) {
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s:%d: expected finding matching %q, got %v", k.file, k.line, rx, msgs)
			}
		}
	}
	for k, msgs := range got {
		if len(want[k]) == 0 {
			t.Errorf("%s:%d: unexpected finding(s): %v", k.file, k.line, msgs)
		}
	}
}

func TestSimDet(t *testing.T)     { runTestdata(t, SimDet) }
func TestMapRange(t *testing.T)   { runTestdata(t, MapRange) }
func TestProbeGuard(t *testing.T) { runTestdata(t, ProbeGuard) }
func TestShardSafe(t *testing.T)  { runTestdata(t, ShardSafeRule) }

// TestSelf runs the full suite over the repository itself: the tree
// must stay dirccvet-clean (the CI lint job enforces the same).
func TestSelf(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the whole module for export data")
	}
	pkgs, err := Load("dircc/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected the whole module, loaded %d packages", len(pkgs))
	}
	for _, d := range RunAnalyzers(pkgs, All()) {
		t.Errorf("%s", d)
	}
}

// TestAllowSuppression checks the //dirccvet:allow comment forms
// directly: same line, line above, multiple analyzers, wrong name.
func TestAllowSuppression(t *testing.T) {
	fset := token.NewFileSet()
	src := `package p
// ordinary comment
//dirccvet:allow simdet justified: host-side timing
var a = 1
var b = 2 //dirccvet:allow simdet,maprange seeded fixture rand, never in simulation
var c = 3
`
	f, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	allow := collectAllows(fset, []*ast.File{f})
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{4, "simdet", true},      // line below the comment
		{3, "simdet", true},      // the comment's own line
		{5, "simdet", true},      // trailing same-line comment
		{5, "maprange", true},    // second analyzer in the list
		{5, "probeguard", false}, // analyzer not named in the comment
		{6, "simdet", true},      // documented: an allowance always covers the next line too
		{7, "simdet", false},     // two lines below is out of range
	}
	for _, c := range cases {
		d := Diagnostic{Pos: token.Position{Filename: "allow.go", Line: c.line}, Analyzer: c.analyzer}
		if got := allow.suppressed(d); got != c.want {
			t.Errorf("line %d analyzer %s: suppressed=%v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}

// TestAllowSelfLint checks that defective allow comments are themselves
// reported: a missing reason, and a named analyzer that suppresses
// nothing. Analyzers outside the active set are not judged (allocguard
// allows must not go "stale" on runs with -alloc=false).
func TestAllowSelfLint(t *testing.T) {
	fset := token.NewFileSet()
	src := `package p
//dirccvet:allow simdet
var a = 1
//dirccvet:allow maprange the range feeds a sorted slice first
var b = 2
//dirccvet:allow probeguard probes are nil-checked by the caller
var c = 3
//dirccvet:allow allocguard one closure per message
var d = 4
`
	f, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	allow := collectAllows(fset, []*ast.File{f})
	// Only the maprange allowance earns its keep.
	allow.suppressed(Diagnostic{Pos: token.Position{Filename: "allow.go", Line: 5}, Analyzer: "maprange"})
	active := map[string]bool{"simdet": true, "maprange": true, "probeguard": true}

	byLine := map[int][]string{}
	for _, d := range allow.selfLint(active) {
		if d.Analyzer != allowCheckName {
			t.Errorf("self-lint finding with analyzer %q, want %q", d.Analyzer, allowCheckName)
		}
		byLine[d.Pos.Line] = append(byLine[d.Pos.Line], d.Message)
	}

	expectContains := func(line int, frag string) {
		t.Helper()
		for _, m := range byLine[line] {
			if strings.Contains(m, frag) {
				return
			}
		}
		t.Errorf("line %d: no self-lint finding containing %q; got %v", line, frag, byLine[line])
	}
	expectContains(2, "needs a justification")
	expectContains(2, `"simdet" suppresses no finding`)
	expectContains(6, `"probeguard" suppresses no finding`)
	if len(byLine[4]) != 0 {
		t.Errorf("used allowance flagged: %v", byLine[4])
	}
	if len(byLine[8]) != 0 {
		t.Errorf("inactive-analyzer allowance flagged: %v", byLine[8])
	}
}
