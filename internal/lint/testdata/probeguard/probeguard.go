// Fixture for the probeguard analyzer: every *obs.Probe method call
// must be dominated by a nil check of the same receiver expression.
package probeguard

import "dircc/internal/obs"

type machine struct {
	probe *obs.Probe
	now   uint64
}

func bad(m *machine) {
	m.probe.Tick(m.now) // want `without a m.probe != nil guard`
}

func badAfterUnrelatedGuard(m, other *machine) {
	if other.probe != nil {
		m.probe.Tick(m.now) // want `without a m.probe != nil guard`
	}
}

func badWrongBranch(m *machine) {
	if m.probe == nil {
		m.probe.Tick(m.now) // want `without a m.probe != nil guard`
	}
}

func goodEnclosing(m *machine) {
	if m.probe != nil {
		m.probe.Tick(m.now)
	}
}

func goodConjunction(m *machine, verbose bool) {
	if verbose && m.probe != nil {
		m.probe.Progress(m.now)
	}
}

func goodEarlyReturn(m *machine) {
	if m.probe == nil {
		return
	}
	m.probe.TxnStart(m.now, 0, 0, false)
	m.probe.TxnEnd(m.now, 0, 0, false)
}

func goodElseBranch(m *machine) {
	if m.probe == nil {
		_ = m.now
	} else {
		m.probe.Tick(m.now)
	}
}

func goodLoopContinue(ms []*machine) {
	for _, m := range ms {
		if m.probe == nil {
			continue
		}
		m.probe.Tick(m.now)
	}
}

func goodNested(m *machine) {
	if m.probe != nil {
		for i := 0; i < 3; i++ {
			m.probe.Tick(m.now + uint64(i))
		}
	}
}
