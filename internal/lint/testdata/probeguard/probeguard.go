// Fixture for the probeguard analyzer: every *obs.Probe method call
// must be dominated by a nil check of the same receiver expression.
package probeguard

import "dircc/internal/obs"

type machine struct {
	probe *obs.Probe
	now   uint64
}

func bad(m *machine) {
	m.probe.Tick(m.now) // want `without a m.probe != nil guard`
}

func badAfterUnrelatedGuard(m, other *machine) {
	if other.probe != nil {
		m.probe.Tick(m.now) // want `without a m.probe != nil guard`
	}
}

func badWrongBranch(m *machine) {
	if m.probe == nil {
		m.probe.Tick(m.now) // want `without a m.probe != nil guard`
	}
}

func goodEnclosing(m *machine) {
	if m.probe != nil {
		m.probe.Tick(m.now)
	}
}

func goodConjunction(m *machine, verbose bool) {
	if verbose && m.probe != nil {
		m.probe.Progress(m.now)
	}
}

func goodEarlyReturn(m *machine) {
	if m.probe == nil {
		return
	}
	m.probe.TxnStart(m.now, 0, 0, false)
	m.probe.TxnEnd(m.now, 0, 0, false)
}

func goodElseBranch(m *machine) {
	if m.probe == nil {
		_ = m.now
	} else {
		m.probe.Tick(m.now)
	}
}

func goodLoopContinue(ms []*machine) {
	for _, m := range ms {
		if m.probe == nil {
			continue
		}
		m.probe.Tick(m.now)
	}
}

func goodNested(m *machine) {
	if m.probe != nil {
		for i := 0; i < 3; i++ {
			m.probe.Tick(m.now + uint64(i))
		}
	}
}

// The sink emit pattern from the attribution collector wiring: the
// send writes the probe-assigned message id through the slot, which
// later feeds the matching deliver. Both calls are probe methods and
// need the guard whether or not the id slot is used.
func badSinkSend(m *machine) {
	var id int64
	m.probe.MsgSend(m.now, "Inv", 0, 1, 9, 2, true, &id) // want `without a m.probe != nil guard`
	_ = id
}

func badSinkDeliver(m *machine, id int64) {
	if m.probe == nil {
		_ = m.now
	}
	m.probe.MsgDeliver(m.now, id, "Inv", 0, 1, 9, true) // want `without a m.probe != nil guard`
}

func goodSinkSendDeliver(m *machine) {
	if m.probe == nil {
		return
	}
	var id int64
	m.probe.MsgSend(m.now, "Inv", 0, 1, 9, 2, true, &id)
	m.probe.MsgDeliver(m.now+1, id, "Inv", 0, 1, 9, true)
	m.probe.HomeStart(m.now+2, 1, 9, "WriteReq", 2)
}
