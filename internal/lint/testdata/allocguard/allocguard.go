// Fixture for allocguard: //dirccvet:hotpath functions must survive the
// compiler's escape analysis without heap allocations; a reviewed
// exception carries a //dirccvet:allow comment.
package allocguard

type point struct{ x, y int }

// sum is hot and allocation-free.
//
//dirccvet:hotpath
func sum(xs []int) int {
	t := 0
	for _, v := range xs {
		t += v
	}
	return t
}

// leak is hot but returns a pointer to its local, forcing the local to
// the heap — the regression allocguard exists to catch.
//
//dirccvet:hotpath
func leak() *point {
	p := point{1, 2}
	return &p
}

// condoned is hot and allocates deliberately, with a justification.
//
//dirccvet:hotpath
func condoned(n int) []int {
	//dirccvet:allow allocguard the scratch buffer is amortized across the whole run
	return make([]int, n)
}

// cold allocates freely: it is not annotated, so not allocguard's
// business.
func cold() *point { return &point{3, 4} }

var sink any

func use() { sink = []any{sum(nil), leak(), condoned(1), cold()} }
