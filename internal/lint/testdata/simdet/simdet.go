// Fixture for the simdet analyzer: flag global-rand draws and
// wall-clock reads, accept seeded generators and allow comments.
package simdet

import (
	"math/rand"
	"time"
)

func bad(n int) int {
	x := rand.Intn(n)                  // want `global rand source`
	_ = time.Now()                     // want `wall clock`
	_ = time.Since(time.Time{})        // want `wall clock`
	_ = time.Until(time.Time{})        // want `wall clock`
	x += int(rand.Int63())             // want `global rand source`
	rand.Shuffle(n, func(_, _ int) {}) // want `global rand source`
	return x
}

func good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.1, 1, 64)
	_ = time.Duration(3) * time.Millisecond
	return rng.Intn(10) + int(z.Uint64())
}

func allowed() time.Time {
	return time.Now() //dirccvet:allow simdet host-side progress timing, never reaches sim state
}

func allowedAbove() time.Time {
	//dirccvet:allow simdet host-side progress timing, never reaches sim state
	return time.Now()
}
