// Fixture for the shardsafe analyzer: engine code must reach the
// kernel through the Machine scheduling façade and count through the
// per-lane sinks, never through Machine.Eng or writes to Machine.Ctr.
package shardsafe

import (
	"dircc/internal/coherent"
	"dircc/internal/stats"
)

// engine declares itself shard-safe, which subjects this package to
// the counter-sink rule.
type engine struct{}

func (engine) ShardSafeEngine() bool { return true }

func badEng(m *coherent.Machine) {
	m.Eng.Schedule(1, func() {}) // want `Machine.Eng bypasses the scheduling façade`
	_ = m.Eng.Now()              // want `Machine.Eng bypasses the scheduling façade`
}

func badEngRun(m *coherent.Machine) error {
	return m.Eng.Run() // want `Machine.Eng bypasses the scheduling façade`
}

func badCtrWrite(m *coherent.Machine, n coherent.NodeID) {
	m.Ctr.Invalidations++      // want `handlers on a sharded machine must count through m.CtrAt`
	m.Ctr.Writebacks += 2      // want `handlers on a sharded machine must count through m.CtrAt`
	m.Ctr.MsgByType["Inv"] = 1 // want `handlers on a sharded machine must count through m.CtrAt`
	_ = n
}

func goodFacade(m *coherent.Machine, n coherent.NodeID) {
	m.ScheduleAt(n, 1, func() {})
	m.ScheduleGlobal(1, func() {})
	m.GlobalOpAt(n, func() {})
	_ = m.Now()
	m.CtrAt(n).Invalidations++
}

func goodCtrRead(m *coherent.Machine) uint64 {
	// Reading the merged counters (reports, assertions) is fine.
	return m.Ctr.Invalidations + m.Ctr.Writebacks
}

func badCtrAlias(m *coherent.Machine) **stats.Counters {
	return &m.Ctr // want `takes the address of Machine.Ctr`
}

func badCtrAliasNested(m *coherent.Machine) {
	h := &m.Ctr.ReadMissCycles // want `takes the address of Machine.Ctr`
	h.Observe(1)
}

func badCtrMethod(m *coherent.Machine, other *stats.Counters) {
	m.Ctr.Add(other)                 // want `calls Add through Machine.Ctr`
	m.Ctr.CountMsg("Inv", 8, 2)      // want `calls CountMsg through Machine.Ctr`
	m.Ctr.ReadMissCycles.Observe(40) // want `calls Observe through Machine.Ctr`
}

func goodCtrMethodValueRecv(m *coherent.Machine) {
	// A value-receiver method copies and cannot mutate the counters.
	_, _ = m.Ctr.ReadMissCycles.MarshalJSON()
}

func goodCtrAtMethod(m *coherent.Machine, n coherent.NodeID, other *stats.Counters) {
	// Mutating through the lane-local sink is the sanctioned route.
	m.CtrAt(n).Add(other)
	m.CtrAt(n).ReadMissCycles.Observe(40)
}

func allowedSequentialDriver(m *coherent.Machine) {
	// A sequential-only driver may opt out with a justification.
	//dirccvet:allow shardsafe this path never runs sharded
	m.Eng.Schedule(0, func() {})
}
