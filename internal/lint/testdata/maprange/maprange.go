// Fixture for the maprange analyzer: flag map iteration that feeds
// observable output or scheduling, accept order-independent loops and
// the sorted-keys idiom.
package maprange

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func bad(w io.Writer, m map[int]int) {
	for k, v := range m { // want `map iteration order reaches Fprintf`
		fmt.Fprintf(w, "%d=%d\n", k, v)
	}
}

func badBuilder(m map[string]bool) string {
	var sb strings.Builder
	for k := range m { // want `map iteration order reaches WriteString`
		sb.WriteString(k)
	}
	return sb.String()
}

func goodSorted(w io.Writer, m map[int]int) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%d=%d\n", k, m[k])
	}
}

func goodAccumulate(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func goodSlice(w io.Writer, s []int) {
	for i, v := range s {
		fmt.Fprintf(w, "%d=%d\n", i, v)
	}
}
