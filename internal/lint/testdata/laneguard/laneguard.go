// Fixture for the laneguard dataflow analyzer: handler code in a
// shard-safe engine package must not reach into another node's
// per-node state with a directory-, chain- or message-derived index
// outside the scheduling façade.
package laneguard

import (
	"dircc/internal/cache"
	"dircc/internal/coherent"
)

// meta is this engine's per-line chain metadata; laneguard learns the
// type from the ln.Meta assertions below and treats stores of
// non-resident node indices into its fields as cross-lane leaks.
type meta struct {
	owner coherent.NodeID
}

// entry is the per-block directory record (home-resident: reached via
// m.Dir, so only the home lane ever touches it).
type entry struct {
	owner   coherent.NodeID
	sharers map[coherent.NodeID]bool
}

// engine declares itself shard-safe, which subjects this package to
// the lane-provenance rules.
type engine struct {
	global map[coherent.BlockID]int
	lanes  []int
}

func (e *engine) ShardSafeEngine() bool { return true }

func (e *engine) entry(m *coherent.Machine, b coherent.BlockID) *entry {
	en, _ := m.Dir(b).(*entry)
	if en == nil {
		en = &entry{owner: coherent.NoNode, sharers: make(map[coherent.NodeID]bool)}
		m.SetDir(b, en)
	}
	return en
}

// StartMiss is clean: it runs at txn.Node and only touches resident
// state and the synchronized Send surface.
func (e *engine) StartMiss(m *coherent.Machine, txn *coherent.Txn) {
	m.Send(&coherent.Msg{
		Type: coherent.MsgReadReq, Src: txn.Node, Dst: m.Home(txn.Block),
		Block: txn.Block, Requester: txn.Node, Aux: coherent.NoNode,
		ToDir: true, Gated: true,
	})
}

// HomeRequest mutates other nodes' caches with directory-derived
// indices — the classic cross-lane violations — and indexes per-lane
// engine state with a foreign node.
func (e *engine) HomeRequest(m *coherent.Machine, msg *coherent.Msg) {
	en := e.entry(m, msg.Block)
	e.global[msg.Block]++ // want `engine-global map`
	if en.owner != coherent.NoNode {
		m.Nodes[en.owner].Cache.Lookup(msg.Block) // want `not resident`
		m.Invalidate(en.owner, msg.Block)         // want `m.Invalidate`
		e.lanes[en.owner]++                       // want `per-lane engine state`
	}
	for n := range en.sharers {
		m.Invalidate(n, msg.Block) // want `m.Invalidate`
	}
	en.owner = msg.Requester
	m.ReleaseHome(msg.Block)
}

// HomeMsg routes the cross-lane work through the scheduling façade:
// inside the re-based closure the scheduled index is the resident lane.
// DeferAt is equally sanctioned — but only when the ISSUER is the
// entry lane, since replay order is keyed to the issuing event.
func (e *engine) HomeMsg(m *coherent.Machine, msg *coherent.Msg) {
	en := e.entry(m, msg.Block)
	owner := en.owner
	if owner == coherent.NoNode {
		return
	}
	m.ScheduleAt(owner, 1, func() {
		m.Invalidate(owner, msg.Block)
	})
	m.DeferAt(msg.Dst, owner, func() {
		e.lanes[owner]++
	})
	m.DeferAt(owner, msg.Dst, func() { // want `m.DeferAt issuer`
		e.lanes[msg.Dst]++
	})
}

// CacheMsg touches its own node's line (fine: message-carried indices
// stored into the handler's own line are plain data), reaches into a
// foreign node's line and stores a chain link there (a leak another
// lane will read concurrently), and carries one reviewed suppression.
func (e *engine) CacheMsg(m *coherent.Machine, msg *coherent.Msg) {
	ln := m.Nodes[msg.Dst].Cache.Lookup(msg.Block)
	if ln == nil {
		return
	}
	mt, _ := ln.Meta.(*meta)
	if mt != nil {
		mt.owner = msg.Requester // own line: plain data, no finding
	}
	prev := m.Nodes[msg.Src].Cache.Lookup(msg.Block) // want `not resident`
	if pm, _ := prev.Meta.(*meta); pm != nil {
		pm.owner = msg.Dst // want `chain-link store`
	}
	//dirccvet:allow laneguard read-only diagnostic peek, torn reads are benign here
	_ = m.Nodes[msg.Src].Cache
}

// OnEvict follows a chain pointer out of the dispatched node's line.
func (e *engine) OnEvict(m *coherent.Machine, n coherent.NodeID, ln *cache.Line) {
	mt, _ := ln.Meta.(*meta)
	if mt == nil {
		return
	}
	if mt.owner != coherent.NoNode && mt.owner != n {
		m.Nodes[mt.owner].Cache.Lookup(ln.Block) // want `not resident`
	}
}
