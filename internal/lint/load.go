package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Incomplete bool
}

// goList shells out to the go tool. With export=true it asks the build
// system for compiled export data of the packages and all their
// dependencies — everything the type checker needs, with no network
// and no third-party loader.
func goList(export bool, patterns ...string) ([]listEntry, error) {
	args := []string{"list", "-e", "-json=ImportPath,Name,Dir,Export,GoFiles,Standard,Incomplete"}
	if export {
		args = append(args, "-export", "-deps")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("lint: go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportImporter builds a types.Importer that resolves imports from
// the export data files `go list -export` reported.
func exportImporter(fset *token.FileSet, entries []listEntry) types.Importer {
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// Load lists, parses and type-checks the packages matching patterns.
// Test files are excluded (the analyzers check simulation code, and
// tests legitimately use the wall clock and the global rand source).
func Load(patterns ...string) ([]*Package, error) {
	withDeps, err := goList(true, patterns...)
	if err != nil {
		return nil, err
	}
	targets, err := goList(false, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, withDeps)

	var pkgs []*Package
	for _, e := range targets {
		if e.Standard || len(e.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range e.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(e.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: typecheck %s: %v", e.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: e.ImportPath,
			Dir:        e.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}
