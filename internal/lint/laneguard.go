package lint

// laneguard is an intraprocedural provenance analysis for the lane
// (node) affinity contract of the sharded kernel (internal/sim Phase P):
// an engine handler dispatched at node n may touch n's own cache lines,
// the home-resident directory/gate state of the block it was dispatched
// for, and the synchronized surfaces of the Machine façade (Txn slots,
// the Store, Send, CtrAt) — and nothing else, unless the access is
// routed through a cross-lane-safe scheduling call (ScheduleAt on the
// target node, DeferAt from the entry lane to the target lane,
// ScheduleGlobal, GlobalOpAt).
//
// The analysis tracks where node indices COME FROM (the dataflow lattice
// in dataflow.go): the handler's own dispatch parameters stay canonical
// symbolic paths ("msg.Dst", "txn.Node", "home(msg.Block)"); indices
// read from directory entries, chain pointers in line metadata, sharer
// sets, or message payloads become Foreign with a provenance reason.
// Residency checks then fire at the sinks:
//
//	R1  m.Nodes[i] indexing (and range over m.Nodes) — i must be
//	    lane-resident;
//	R2  m.Invalidate(i, b) / m.ReplaceBlock(i, b) — i must be
//	    lane-resident;
//	R3  a chain-link store into a foreign line: mutating a NodeID field
//	    of a line-metadata value whose line does not belong to this
//	    handler's lane (message-carried indices stored into the
//	    handler's OWN line are plain data — cross-lane readers go
//	    through the home-resident accessors, not the line);
//	R4  engine-global map fields on the engine receiver (shared across
//	    lanes by construction), and per-lane engine slice fields
//	    (e.tombs[i]) indexed by a non-resident node;
//	R5  m.ReleaseHome(b) / m.SerializeWrite(msg) / m.Dir(b) /
//	    m.SetDir(b, v) — the block must be home-resident in this
//	    handler context;
//	R6  direct m.Ctr mutation (the per-lane counter is m.CtrAt).
//
// Entry contexts follow the Engine interface contract: StartMiss runs at
// txn.Node; HomeRequest/HomeMsg run at the home (msg.Dst == home of
// msg.Block); CacheMsg runs at msg.Dst; OnEvict runs at n. Helper
// functions are summarized: a residency requirement on a parameter-
// rooted path is propagated to call sites instead of reported, through a
// fixpoint so helper→helper chains resolve.
//
// Two modes share the machinery. Gating: the LaneGuard analyzer reports
// findings only in packages that declare a ShardSafeEngine marker — the
// engines that actually run on the sharded kernel must certify clean.
// Inventory: Inventory() returns every finding for every engine package
// as a structured cross-lane touch-point list (the work-list for
// parallelizing the chain/tree families, ROADMAP item 1).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LaneGuard is the gating analyzer: packages that declare a
// ShardSafeEngine marker must have zero cross-lane touch points.
var LaneGuard = &Analyzer{
	Name: "laneguard",
	Doc:  "engine handlers in shard-safe packages must not touch another lane's state outside the scheduling façade",
	Run:  runLaneGuard,
}

func runLaneGuard(p *Pass) {
	if p.Pkg.Path() == coherentPath {
		return // the machine façade itself owns cross-lane plumbing
	}
	if !declaresShardSafeEngine(p.Pkg) {
		return // inventory-only package; see Inventory()
	}
	la := newLaneAnalysis(p.Fset, p.Files, p.Pkg, p.Info)
	for _, f := range la.run() {
		p.Reportf(f.pos, "%s", f.msg)
	}
}

// TouchPoint is one cross-lane access in an engine's handler-reachable
// code: the concrete work item that must move behind the façade (or be
// re-homed) before that engine can run sharded.
type TouchPoint struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Func   string `json:"func"`
	Reason string `json:"reason"`
}

// EngineInventory is the per-engine cross-lane touch-point list.
// ShardSafe engines are included with empty lists: the certification is
// part of the inventory.
type EngineInventory struct {
	Package     string       `json:"package"`
	Engine      string       `json:"engine"`
	ShardSafe   bool         `json:"shard_safe"`
	TouchPoints []TouchPoint `json:"touch_points"`
}

// Inventory runs laneguard over every package that declares a coherence
// engine (a type with all five handler methods) and returns the
// per-engine touch-point lists. Allow comments do not apply here: the
// inventory is a work-list, not a gate.
func Inventory(pkgs []*Package) []EngineInventory {
	var out []EngineInventory
	for _, pkg := range pkgs {
		if pkg.Types.Path() == coherentPath {
			continue
		}
		la := newLaneAnalysis(pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
		if len(la.engines) == 0 {
			continue
		}
		safe := declaresShardSafeEngine(pkg.Types)
		findings := la.run()
		for _, eng := range la.engineNames() {
			inv := EngineInventory{
				Package:     pkg.Types.Path(),
				Engine:      eng,
				ShardSafe:   safe,
				TouchPoints: []TouchPoint{},
			}
			for _, f := range findings {
				if f.engine != eng {
					continue
				}
				pos := pkg.Fset.Position(f.pos)
				inv.TouchPoints = append(inv.TouchPoints, TouchPoint{
					File:   pos.Filename,
					Line:   pos.Line,
					Func:   f.fn,
					Reason: f.msg,
				})
			}
			out = append(out, inv)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Package != out[j].Package {
			return out[i].Package < out[j].Package
		}
		return out[i].Engine < out[j].Engine
	})
	return out
}

// ---------------------------------------------------------------------------
// analysis state

var handlerNames = map[string]bool{
	"StartMiss": true, "HomeRequest": true, "HomeMsg": true,
	"CacheMsg": true, "OnEvict": true,
}

// Machine façade methods that are safe with any argument: they either
// read immutable configuration, touch a synchronized surface (Txn slots,
// the Store, message transport), or route the work to the right lane
// themselves.
var safeMachineMethods = map[string]bool{
	"Send": true, "Txn": true, "DeferToTxn": true, "CompleteTxn": true,
	"CtrAt": true, "Home": true, "Now": true, "BlockOf": true,
	"Alloc": true, "Tracing": true, "TraceDir": true, "TraceState": true,
	"RunKernel": true, "Quiesce": true, "Outstanding": true,
	"HomeGateBusy": true, "Protocol": true, "Shards": true,
	// scheduling façade: argument closures are re-based to the target
	// lane (handled in checkCall).
	"ScheduleAt": true, "ScheduleGlobal": true, "GlobalOpAt": true,
	"ReadMem": true, "DeferAt": true,
}

type laneFinding struct {
	engine string
	pos    token.Pos
	fn     string
	msg    string
}

type laneReqKind int

const (
	reqLane laneReqKind = iota // path must resolve to a lane-resident node index
	reqHome                    // path must resolve to a home-resident block
)

type laneReq struct {
	kind laneReqKind
	path string // canonical path rooted at a parameter name
	what string // human description of the access the callee performs
}

type funcSummary struct {
	decl   *ast.FuncDecl
	params []string // flat parameter names, positional
	reqs   []laneReq
}

type laneAnalysis struct {
	fset *token.FileSet
	pkg  *types.Package
	info *types.Info

	// engines maps engine type name -> handler method decls.
	engines map[string]map[string]*ast.FuncDecl
	// summaries for every non-handler package function/method.
	summaries map[*types.Func]*funcSummary
	declOf    map[*types.Func]*ast.FuncDecl
	objOf     map[*ast.FuncDecl]*types.Func
	// metaTypes are line-metadata structs (assigned to cache.Line.Meta
	// or passed as the CompleteTxn meta argument).
	metaTypes map[*types.Named]bool

	findings []laneFinding
	seen     map[string]bool
}

func newLaneAnalysis(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *laneAnalysis {
	la := &laneAnalysis{
		fset:      fset,
		pkg:       pkg,
		info:      info,
		engines:   map[string]map[string]*ast.FuncDecl{},
		summaries: map[*types.Func]*funcSummary{},
		declOf:    map[*types.Func]*ast.FuncDecl{},
		objOf:     map[*ast.FuncDecl]*types.Func{},
		metaTypes: map[*types.Named]bool{},
		seen:      map[string]bool{},
	}
	byType := map[string]map[string]*ast.FuncDecl{}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			la.declOf[obj] = fd
			la.objOf[fd] = obj
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				tn := recvTypeName(fd.Recv.List[0].Type)
				if tn != "" {
					if byType[tn] == nil {
						byType[tn] = map[string]*ast.FuncDecl{}
					}
					byType[tn][fd.Name.Name] = fd
				}
			}
		}
		la.collectMetaTypes(f)
	}
	for tn, methods := range byType {
		all := true
		for h := range handlerNames {
			if methods[h] == nil {
				all = false
				break
			}
		}
		if all {
			la.engines[tn] = methods
		}
	}
	return la
}

func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver, not used by engines
		return recvTypeName(e.X)
	}
	return ""
}

func (la *laneAnalysis) engineNames() []string {
	var names []string
	for n := range la.engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// collectMetaTypes records named struct types used as per-line protocol
// metadata: targets of `ln.Meta.(*T)` assertions, values assigned to a
// `.Meta` field, and the 4th argument of CompleteTxn.
func (la *laneAnalysis) collectMetaTypes(f *ast.File) {
	addType := func(t types.Type) {
		for {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
				continue
			}
			break
		}
		if n, ok := t.(*types.Named); ok {
			if _, isStruct := n.Underlying().(*types.Struct); isStruct {
				la.metaTypes[n] = true
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.TypeAssertExpr:
			if sel, ok := n.X.(*ast.SelectorExpr); ok && sel.Sel.Name == "Meta" && n.Type != nil {
				if tv, ok := la.info.Types[n.Type]; ok {
					addType(tv.Type)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Meta" && i < len(n.Rhs) {
					if tv, ok := la.info.Types[n.Rhs[i]]; ok {
						addType(tv.Type)
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "CompleteTxn" && len(n.Args) == 4 {
				if isMachine(la.typeOf(sel.X)) {
					if tv, ok := la.info.Types[n.Args[3]]; ok {
						addType(tv.Type)
					}
				}
			}
		}
		return true
	})
}

// run performs the two-phase analysis and returns deduplicated,
// position-sorted findings.
func (la *laneAnalysis) run() []laneFinding {
	// Phase 1: helper summaries to fixpoint. Requirements only ever
	// grow, so iterate until stable (helper→helper chains are short).
	var helperObjs []*types.Func
	for obj, decl := range la.declOf {
		if la.isHandlerDecl(decl) {
			continue
		}
		la.summaries[obj] = &funcSummary{decl: decl, params: paramNames(decl)}
		helperObjs = append(helperObjs, obj)
	}
	sort.Slice(helperObjs, func(i, j int) bool {
		return la.declOf[helperObjs[i]].Pos() < la.declOf[helperObjs[j]].Pos()
	})
	for iter := 0; iter < 10; iter++ {
		changed := false
		for _, obj := range helperObjs {
			s := la.summaries[obj]
			before := reqKey(s.reqs)
			fa := la.newFuncAnalysis(s.decl, nil, nil, true, s, "")
			fa.analyze()
			if reqKey(s.reqs) != before {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Phase 2: handlers under their entry contexts, per engine; then
	// unconditional findings from reachable helpers.
	for _, eng := range la.engineNames() {
		methods := la.engines[eng]
		for _, h := range []string{"StartMiss", "HomeRequest", "HomeMsg", "CacheMsg", "OnEvict"} {
			decl := methods[h]
			R, HB := entryContext(h, decl)
			fa := la.newFuncAnalysis(decl, R, HB, false, nil, eng)
			fa.analyze()
		}
		for _, obj := range la.reachableHelpers(methods) {
			// Keep the (fixpoint-stable) summary attached: parameter-
			// rooted failures stay call-site requirements, only
			// unconditional violations are reported here.
			s := la.summaries[obj]
			fa := la.newFuncAnalysis(s.decl, nil, nil, true, s, eng)
			fa.analyze()
		}
	}
	sort.Slice(la.findings, func(i, j int) bool {
		if la.findings[i].engine != la.findings[j].engine {
			return la.findings[i].engine < la.findings[j].engine
		}
		return la.findings[i].pos < la.findings[j].pos
	})
	return la.findings
}

func (la *laneAnalysis) isHandlerDecl(decl *ast.FuncDecl) bool {
	if decl.Recv == nil || !handlerNames[decl.Name.Name] {
		return false
	}
	methods, ok := la.engines[recvTypeName(decl.Recv.List[0].Type)]
	return ok && methods[decl.Name.Name] == decl
}

// reachableHelpers walks the package-local call graph from the engine's
// five handlers and returns the reachable non-handler functions in
// declaration order.
func (la *laneAnalysis) reachableHelpers(methods map[string]*ast.FuncDecl) []*types.Func {
	seen := map[*types.Func]bool{}
	var queue []*ast.FuncDecl
	for _, h := range []string{"StartMiss", "HomeRequest", "HomeMsg", "CacheMsg", "OnEvict"} {
		queue = append(queue, methods[h])
	}
	var out []*types.Func
	for len(queue) > 0 {
		decl := queue[0]
		queue = queue[1:]
		ast.Inspect(decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := la.calleeFunc(call)
			if callee == nil || seen[callee] {
				return true
			}
			d := la.declOf[callee]
			if d == nil || la.isHandlerDecl(d) {
				return true
			}
			seen[callee] = true
			out = append(out, callee)
			queue = append(queue, d)
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool {
		return la.declOf[out[i]].Pos() < la.declOf[out[j]].Pos()
	})
	return out
}

func (la *laneAnalysis) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := la.info.Uses[fun].(*types.Func); ok && f.Pkg() == la.pkg {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := la.info.Uses[fun.Sel].(*types.Func); ok && f.Pkg() == la.pkg {
			return f
		}
	}
	return nil
}

func (la *laneAnalysis) typeOf(e ast.Expr) types.Type {
	if tv, ok := la.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (la *laneAnalysis) report(engine string, fn string, pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%s|%d|%s", engine, pos, msg)
	if la.seen[key] {
		return
	}
	la.seen[key] = true
	la.findings = append(la.findings, laneFinding{engine: engine, pos: pos, fn: fn, msg: msg})
}

func paramNames(decl *ast.FuncDecl) []string {
	var out []string
	if decl.Type.Params == nil {
		return out
	}
	for _, fld := range decl.Type.Params.List {
		for _, n := range fld.Names {
			out = append(out, n.Name)
		}
	}
	return out
}

func reqKey(reqs []laneReq) string {
	keys := make([]string, len(reqs))
	for i, r := range reqs {
		keys[i] = fmt.Sprintf("%d:%s", r.kind, r.path)
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// entryContext returns the lane-resident node paths (R) and
// home-resident block paths (HB) for a handler, in terms of its actual
// parameter names.
func entryContext(handler string, decl *ast.FuncDecl) (R, HB map[string]bool) {
	names := paramNames(decl)
	R, HB = map[string]bool{}, map[string]bool{}
	get := func(i int) string {
		if i < len(names) {
			return names[i]
		}
		return "_"
	}
	switch handler {
	case "StartMiss": // (m, txn): runs at the requesting node
		R[get(1)+".Node"] = true
	case "HomeRequest", "HomeMsg": // (m, msg): runs at home == msg.Dst
		R[get(1)+".Dst"] = true
		R["home("+get(1)+".Block)"] = true
		HB[get(1)+".Block"] = true
	case "CacheMsg": // (m, msg): runs at msg.Dst
		R[get(1)+".Dst"] = true
	case "OnEvict": // (m, n, ln): runs at n
		R[get(1)] = true
	}
	return R, HB
}

// ---------------------------------------------------------------------------
// per-function analysis

type funcAnalysis struct {
	la   *laneAnalysis
	decl *ast.FuncDecl
	R    map[string]bool // lane-resident node-index canon paths
	HB   map[string]bool // home-resident block canon paths

	// summary mode: a failing check on a parameter-rooted path becomes
	// a requirement on sum instead of a finding.
	summary bool
	sum     *funcSummary

	engine string // attribution for findings ("" while summarizing)

	// rebased marks closure bodies re-homed by the scheduling façade:
	// inside them, parameter-rooted failures are real findings even in
	// summary mode (the caller's lane no longer applies).
	rebased bool

	// reported R4 fields, one finding per (function, field).
	mapFields map[string]bool

	universal bool // ScheduleGlobal / GlobalOpAt bodies: every lane is resident
}

func (la *laneAnalysis) newFuncAnalysis(decl *ast.FuncDecl, R, HB map[string]bool, summary bool, sum *funcSummary, engine string) *funcAnalysis {
	if R == nil {
		R = map[string]bool{}
	}
	if HB == nil {
		HB = map[string]bool{}
	}
	return &funcAnalysis{
		la: la, decl: decl, R: R, HB: HB,
		summary: summary, sum: sum, engine: engine,
		mapFields: map[string]bool{},
	}
}

func (fa *funcAnalysis) analyze() {
	e := env{}
	seed := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			for _, name := range fld.Names {
				obj := fa.la.info.Defs[name]
				if obj == nil || isMachine(obj.Type()) {
					continue
				}
				e[obj] = canonVal(name.Name)
			}
		}
	}
	seed(fa.decl.Type.Params)
	fa.analyzeBody(fa.decl.Body, e)
}

func (fa *funcAnalysis) analyzeBody(body *ast.BlockStmt, entry env) {
	cfg := buildCFG(body)
	forward(cfg, entry, fa.transfer)
}

func (fa *funcAnalysis) funcName() string {
	if fa.decl.Recv != nil {
		return recvTypeName(fa.decl.Recv.List[0].Type) + "." + fa.decl.Name.Name
	}
	return fa.decl.Name.Name
}

func (fa *funcAnalysis) reportf(pos token.Pos, format string, args ...any) {
	fa.la.report(fa.engine, fa.funcName(), pos, format, args...)
}

// failResidency handles a failed residency check on value v at pos.
// what describes the access for diagnostics.
func (fa *funcAnalysis) failResidency(pos token.Pos, kind laneReqKind, v value, what string) {
	if fa.universal {
		return
	}
	if fa.summary && !fa.rebased && fa.sum != nil {
		if v.kind == vCanon {
			if root := pathRoot(v.path); root != "" && contains(fa.sum.params, root) {
				fa.addReq(laneReq{kind: kind, path: v.path, what: what})
				return
			}
		}
	}
	if fa.summary && fa.sum != nil {
		// Summarizing pass records requirements only; unconditional
		// findings are reported in phase 2 (engine != "").
		if fa.engine == "" {
			return
		}
	}
	switch kind {
	case reqLane:
		fa.reportf(pos, "%s: %s is not resident in this handler's lane; route it through m.ScheduleAt/m.GlobalOpAt", what, describeVal(v))
	case reqHome:
		fa.reportf(pos, "%s: %s is not home-resident in this handler context", what, describeVal(v))
	}
}

func (fa *funcAnalysis) addReq(r laneReq) {
	for _, have := range fa.sum.reqs {
		if have.kind == r.kind && have.path == r.path {
			return
		}
	}
	fa.sum.reqs = append(fa.sum.reqs, r)
}

// describeVal renders a provenance value for a diagnostic.
func describeVal(v value) string {
	switch v.kind {
	case vCanon:
		if why := canonWhy(v.path); why != "" {
			return fmt.Sprintf("node index %s (%s)", v.path, why)
		}
		return v.path
	case vForeign:
		return v.why
	case vConst:
		return "constant index"
	default:
		return "untracked value"
	}
}

// canonWhy classifies still-canonical but non-resident paths.
func canonWhy(path string) string {
	for _, suf := range []string{".Src", ".Requester", ".Aux", ".AckTo"} {
		if strings.HasSuffix(path, suf) {
			return "message-carried"
		}
	}
	if strings.Contains(path, ".Ptrs") {
		return "message-carried pointer list"
	}
	return ""
}

func pathRoot(path string) string {
	for _, pre := range []string{"home(", "nodeof(", "txn(", "lineof("} {
		if strings.HasPrefix(path, pre) {
			path = path[len(pre):]
		}
	}
	for i := 0; i < len(path); i++ {
		switch path[i] {
		case '.', '(', ')', ';', '[':
			return path[:i]
		}
	}
	return path
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// resident reports whether value v satisfies a residency requirement of
// the given kind in this function's context.
func (fa *funcAnalysis) resident(kind laneReqKind, v value) bool {
	if fa.universal {
		return true
	}
	switch v.kind {
	case vConst, vBottom:
		return true // sentinel (NoNode) or untaken path
	case vForeign:
		return false
	}
	if kind == reqLane {
		// Freshly constructed metadata belongs to this lane.
		if v.path == "@fresh" {
			return true
		}
		// A line handle (or metadata reached through one) is resident
		// exactly when the node that owns the line is; a node handle
		// (nodeof(i)) is resident exactly when i is.
		if inner, ok := lineInner(v.path); ok {
			return fa.resident(reqLane, canonVal(inner))
		}
		if inner, ok := cutWrap(v.path, "nodeof("); ok {
			return fa.resident(reqLane, canonVal(inner))
		}
	}
	set := fa.R
	if kind == reqHome {
		set = fa.HB
	}
	if set[v.path] {
		return true
	}
	// A node resident as home(X) also satisfies lane-residency checks
	// phrased the other way around.
	if kind == reqLane && set["home("+v.path+")"] {
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// transfer function

func (fa *funcAnalysis) transfer(n ast.Node, e env, check bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if check {
			for _, rhs := range n.Rhs {
				fa.checkExpr(rhs, e)
			}
			for _, lhs := range n.Lhs {
				fa.checkWrite(lhs, n.Rhs, e)
			}
		}
		fa.assign(n, e)
	case *ast.IncDecStmt:
		if check {
			fa.checkWrite(n.X, nil, e)
			fa.checkExpr(n.X, e)
		}
		if id, ok := n.X.(*ast.Ident); ok {
			if obj := fa.la.info.ObjectOf(id); obj != nil {
				e[obj] = foreignVal("computed index")
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				obj := fa.la.info.Defs[name]
				if obj == nil {
					continue
				}
				if i < len(vs.Values) {
					if check {
						fa.checkExpr(vs.Values[i], e)
					}
					e[obj] = fa.canonOf(vs.Values[i], e)
				} else {
					e[obj] = constVal // zero value
				}
			}
		}
	case *ast.RangeStmt:
		fa.rangeStmt(n, e, check)
	case *ast.ReturnStmt:
		if check {
			for _, r := range n.Results {
				fa.checkExpr(r, e)
			}
		}
	case *ast.ExprStmt:
		if check {
			fa.checkExpr(n.X, e)
		}
	case *ast.GoStmt:
		if check {
			fa.checkExpr(n.Call, e)
		}
	case *ast.DeferStmt:
		if check {
			fa.checkExpr(n.Call, e)
		}
	case *ast.SendStmt:
		if check {
			fa.checkExpr(n.Chan, e)
			fa.checkExpr(n.Value, e)
		}
	case ast.Expr:
		// Hoisted condition/tag expressions from if/for/switch heads.
		if check {
			fa.checkExpr(n, e)
		}
	}
}

func (fa *funcAnalysis) assign(n *ast.AssignStmt, e env) {
	// Multi-assign from a single call (e.g. ln, ok := ...): values
	// untracked unless 1:1.
	if len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := fa.la.info.ObjectOf(id)
			if obj == nil {
				continue
			}
			e[obj] = fa.canonOf(n.Rhs[i], e)
		}
		return
	}
	// v, ok := m[k] / x.(*T) / f(): give the first variable the
	// provenance of the right-hand expression; comma-ok bools are
	// constants for our purposes.
	var rhsVal value = foreignVal("derived from multi-value assignment")
	if len(n.Rhs) == 1 {
		rhsVal = fa.canonOf(n.Rhs[0], e)
	}
	for i, lhs := range n.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := fa.la.info.ObjectOf(id)
		if obj == nil {
			continue
		}
		switch {
		case isBoolType(obj.Type()):
			e[obj] = constVal
		case i == 0:
			e[obj] = rhsVal
		default:
			e[obj] = foreignVal("derived from multi-value assignment")
		}
	}
}

func (fa *funcAnalysis) rangeStmt(n *ast.RangeStmt, e env, check bool) {
	if check {
		fa.checkExpr(n.X, e)
	}
	xt := fa.la.typeOf(n.X)
	// range over m.Nodes is a machine-wide sweep.
	if sel, ok := n.X.(*ast.SelectorExpr); ok && sel.Sel.Name == "Nodes" && isMachine(fa.la.typeOf(sel.X)) {
		if check && !fa.universal {
			if fa.engine != "" || !fa.summary {
				fa.reportf(n.Pos(), "machine-wide sweep over m.Nodes from handler-reachable code; hoist behind m.ScheduleGlobal")
			}
		}
		fa.setRangeVar(n.Key, e, foreignVal("machine-wide node sweep"))
		fa.setRangeVar(n.Value, e, foreignVal("machine-wide node sweep"))
		return
	}
	why := "iterated collection"
	switch fa.canonOf(n.X, e).kind {
	case vForeign:
		why = fa.canonOf(n.X, e).why
	case vCanon:
		if w := canonWhy(fa.canonOf(n.X, e).path); w != "" {
			why = w + " (" + fa.canonOf(n.X, e).path + ")"
		}
	}
	if xt != nil {
		if m, ok := xt.Underlying().(*types.Map); ok && isNodeIDType(m.Key()) {
			fa.setRangeVar(n.Key, e, foreignVal("sharer-set iteration"))
			fa.setRangeVar(n.Value, e, foreignVal("sharer-set iteration"))
			return
		}
	}
	fa.setRangeVar(n.Key, e, foreignVal("index of "+why))
	fa.setRangeVar(n.Value, e, foreignVal(why))
}

func (fa *funcAnalysis) setRangeVar(expr ast.Expr, e env, v value) {
	id, ok := expr.(*ast.Ident)
	if !ok || id == nil {
		return
	}
	if obj := fa.la.info.ObjectOf(id); obj != nil {
		e[obj] = v
	}
}

// ---------------------------------------------------------------------------
// provenance evaluation

func (fa *funcAnalysis) canonOf(expr ast.Expr, e env) value {
	switch x := expr.(type) {
	case *ast.Ident:
		obj := fa.la.info.ObjectOf(x)
		if obj == nil {
			return foreignVal("unresolved identifier " + x.Name)
		}
		if _, isConst := obj.(*types.Const); isConst {
			return constVal
		}
		if v, ok := e[obj]; ok {
			return v
		}
		if _, isVar := obj.(*types.Var); isVar {
			if obj.Parent() == fa.la.pkg.Scope() || obj.Pkg() != fa.la.pkg {
				return foreignVal("package-level state " + x.Name)
			}
			return bottomVal // declared later / untracked local
		}
		return constVal // func/type idents in value position: not an index
	case *ast.BasicLit:
		return constVal
	case *ast.ParenExpr:
		return fa.canonOf(x.X, e)
	case *ast.UnaryExpr:
		return fa.canonOf(x.X, e)
	case *ast.StarExpr:
		return fa.canonOf(x.X, e)
	case *ast.SelectorExpr:
		return fa.canonSelector(x, e)
	case *ast.IndexExpr:
		return fa.canonIndex(x, e)
	case *ast.CallExpr:
		return fa.canonCall(x, e)
	case *ast.BinaryExpr:
		l, r := fa.canonOf(x.X, e), fa.canonOf(x.Y, e)
		if l.kind == vConst && r.kind == vConst {
			return constVal
		}
		return foreignVal("computed index")
	case *ast.TypeAssertExpr:
		base := fa.canonOf(x.X, e)
		if base.kind == vCanon {
			return canonVal(base.path + ".(assert)")
		}
		return base
	case *ast.CompositeLit:
		// Freshly constructed metadata belongs to the constructing lane
		// until it is installed on a line.
		if t := fa.la.typeOf(x); t != nil && fa.isMetaType(t) {
			return canonVal("@fresh")
		}
		return foreignVal("composite value")
	case *ast.FuncLit:
		return foreignVal("composite value")
	default:
		return foreignVal("untracked expression")
	}
}

func (fa *funcAnalysis) canonSelector(sel *ast.SelectorExpr, e env) value {
	// Qualified package identifier (coherent.NoNode)?
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := fa.la.info.ObjectOf(id).(*types.PkgName); isPkg {
			if _, isConst := fa.la.info.ObjectOf(sel.Sel).(*types.Const); isConst {
				return constVal
			}
			return foreignVal("package-level state " + sel.Sel.Name)
		}
	}
	base := fa.canonOf(sel.X, e)
	name := sel.Sel.Name
	if base.kind == vCanon {
		// Structured derefs through façade-produced values.
		if node, blk, ok := splitTxnPath(base.path); ok {
			switch name {
			case "Node":
				return canonVal(node)
			case "Block":
				return canonVal(blk)
			default:
				return canonVal(base.path + "." + name)
			}
		}
		if inner, ok := cutWrap(base.path, "nodeof("); ok && name == "ID" {
			return canonVal(inner)
		}
		return canonVal(base.path + "." + name)
	}
	if t := fa.la.typeOf(sel); t != nil && isNodeIDish(t) {
		// A node index read out of an untracked struct: a chain/tree
		// pointer or directory field another lane owns.
		if base.kind == vForeign {
			return foreignVal("chain pointer ." + name + " (" + base.why + ")")
		}
		return foreignVal("directory/chain-derived index ." + name)
	}
	if base.kind == vForeign {
		return base
	}
	return base
}

func (fa *funcAnalysis) canonIndex(ix *ast.IndexExpr, e env) value {
	// m.Nodes[i] yields a handle on node i (checked at checkExpr).
	if sel, ok := ix.X.(*ast.SelectorExpr); ok && sel.Sel.Name == "Nodes" && isMachine(fa.la.typeOf(sel.X)) {
		iv := fa.canonOf(ix.Index, e)
		if iv.kind == vCanon {
			return canonVal("nodeof(" + iv.path + ")")
		}
		return iv
	}
	base := fa.canonOf(ix.X, e)
	if t := fa.la.typeOf(ix); t != nil && isNodeIDish(t) {
		switch base.kind {
		case vCanon:
			if w := canonWhy(base.path); w != "" {
				return foreignVal(w + " (" + base.path + ")")
			}
			return foreignVal("element of " + base.path)
		case vForeign:
			return foreignVal(base.why)
		default:
			return foreignVal("read of " + types.ExprString(ix.X))
		}
	}
	if base.kind == vCanon {
		return canonVal(base.path + "[...]")
	}
	return base
}

func (fa *funcAnalysis) canonCall(call *ast.CallExpr, e env) value {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isMachine(fa.la.typeOf(sel.X)) {
		switch sel.Sel.Name {
		case "Home":
			if len(call.Args) == 1 {
				bv := fa.canonOf(call.Args[0], e)
				if bv.kind == vCanon {
					return canonVal("home(" + bv.path + ")")
				}
				return bv
			}
		case "Txn":
			if len(call.Args) == 2 {
				nv := fa.canonOf(call.Args[0], e)
				bv := fa.canonOf(call.Args[1], e)
				if nv.kind == vCanon && bv.kind == vCanon {
					return canonVal("txn(" + nv.path + ";" + bv.path + ")")
				}
				if nv.kind == vForeign {
					return nv
				}
				return foreignVal("transaction handle with untracked owner")
			}
		}
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		switch fn.Name {
		case "len", "cap", "int", "uint64", "uint32", "uint", "byte":
			return constVal
		case "append":
			// append(xs, ys...) carries the joined provenance of the
			// appended elements — this is how msg.Ptrs flows into a
			// meta children slice.
			v := bottomVal
			for _, a := range call.Args[1:] {
				v = v.join(fa.canonOf(a, e))
			}
			if len(call.Args) > 0 {
				v = v.join(fa.canonOf(call.Args[0], e))
			}
			return v
		}
	}
	// <node>.Cache.Lookup(b) yields a handle on that node's own line:
	// track it as lineof(node) so metadata mutations can be tied back
	// to the lane that owns the line.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Lookup" && len(call.Args) == 1 {
		bv := fa.canonOf(sel.X, e)
		if bv.kind == vCanon && strings.HasSuffix(bv.path, ".Cache") {
			inner := strings.TrimSuffix(bv.path, ".Cache")
			if i2, ok := cutWrap(inner, "nodeof("); ok {
				inner = i2
			}
			return canonVal("lineof(" + inner + ")")
		}
	}
	// Package-local metadata helpers: a single-argument accessor
	// (sciMetaOf(ln) and friends) passes its argument's line provenance
	// through; a zero-argument constructor (newMeta()) yields fresh
	// metadata owned by the constructing lane.
	if callee := fa.la.calleeFunc(call); callee != nil {
		if t := fa.la.typeOf(call); t != nil && fa.isMetaType(t) {
			switch len(call.Args) {
			case 0:
				return canonVal("@fresh")
			case 1:
				return fa.canonOf(call.Args[0], e)
			}
		}
	}
	name := types.ExprString(call.Fun)
	if t := fa.la.typeOf(call); t != nil && isNodeIDish(t) {
		return foreignVal("node index derived by " + name)
	}
	return foreignVal("result of " + name)
}

func splitTxnPath(path string) (node, blk string, ok bool) {
	inner, ok := cutWrap(path, "txn(")
	if !ok {
		return "", "", false
	}
	// split on the top-level ';'
	depth := 0
	for i := 0; i < len(inner); i++ {
		switch inner[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ';':
			if depth == 0 {
				return inner[:i], inner[i+1:], true
			}
		}
	}
	return "", "", false
}

// lineInner extracts X from a path rooted at lineof(X), tolerating any
// selector suffix ("lineof(msg.Dst).Meta.(assert)" -> "msg.Dst").
func lineInner(path string) (string, bool) {
	rest, ok := strings.CutPrefix(path, "lineof(")
	if !ok {
		return "", false
	}
	depth := 1
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return rest[:i], true
			}
		}
	}
	return "", false
}

func cutWrap(path, prefix string) (string, bool) {
	if strings.HasPrefix(path, prefix) && strings.HasSuffix(path, ")") {
		return path[len(prefix) : len(path)-1], true
	}
	return "", false
}

// ---------------------------------------------------------------------------
// checks (reporting pass only)

// checkExpr walks expr, firing residency checks at every sink.
func (fa *funcAnalysis) checkExpr(expr ast.Expr, e env) {
	switch x := expr.(type) {
	case nil:
		return
	case *ast.CallExpr:
		fa.checkCall(x, e)
	case *ast.IndexExpr:
		fa.checkNodesIndex(x, e)
		fa.checkEngineSliceIndex(x, e)
		fa.checkExpr(x.X, e)
		fa.checkExpr(x.Index, e)
	case *ast.SelectorExpr:
		fa.checkEngineMapField(x, e)
		fa.checkExpr(x.X, e)
	case *ast.ParenExpr:
		fa.checkExpr(x.X, e)
	case *ast.StarExpr:
		fa.checkExpr(x.X, e)
	case *ast.UnaryExpr:
		fa.checkExpr(x.X, e)
	case *ast.BinaryExpr:
		fa.checkExpr(x.X, e)
		fa.checkExpr(x.Y, e)
	case *ast.TypeAssertExpr:
		fa.checkExpr(x.X, e)
	case *ast.SliceExpr:
		fa.checkExpr(x.X, e)
		fa.checkExpr(x.Low, e)
		fa.checkExpr(x.High, e)
		fa.checkExpr(x.Max, e)
	case *ast.CompositeLit:
		fa.checkCompositeLit(x, e)
	case *ast.KeyValueExpr:
		fa.checkExpr(x.Value, e)
	case *ast.FuncLit:
		// A func literal outside a façade argument position runs in
		// the same lane (e.g. a sort.Slice comparator): analyze it
		// under the current context and environment.
		sub := fa.cloneFor(fa.R, fa.HB, fa.rebased, fa.universal)
		sub.analyzeBody(x.Body, e.clone())
	}
}

// cloneFor derives a funcAnalysis for a closure body.
func (fa *funcAnalysis) cloneFor(R, HB map[string]bool, rebased, universal bool) *funcAnalysis {
	return &funcAnalysis{
		la: fa.la, decl: fa.decl, R: R, HB: HB,
		summary: fa.summary, sum: fa.sum, engine: fa.engine,
		rebased: rebased, universal: universal,
		mapFields: fa.mapFields,
	}
}

// checkWrite fires the write-position checks (R3, R6) for lhs.
func (fa *funcAnalysis) checkWrite(lhs ast.Expr, rhs []ast.Expr, e env) {
	// Unwrap index/paren around the selector: meta.children[i] = v.
	target := lhs
	for {
		switch t := target.(type) {
		case *ast.IndexExpr:
			target = t.X
			continue
		case *ast.ParenExpr:
			target = t.X
			continue
		case *ast.StarExpr:
			target = t.X
			continue
		}
		break
	}
	sel, ok := target.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// R6: direct m.Ctr mutation.
	if fa.ctrChain(sel) {
		if fa.engine != "" || !fa.summary {
			fa.reportf(lhs.Pos(), "direct write to m.Ctr from engine code; use m.CtrAt(lane) so sharded runs keep per-lane counters")
		}
		return
	}
	// R3: chain-link store into a FOREIGN line's metadata. The value
	// being stored is plain data — what matters is which lane owns the
	// line the metadata belongs to. Metadata reached through a
	// lane-resident lookup (lineof(X) with X resident) is fine; a
	// bare parameter-rooted handle is the callee's contract (recorded
	// as a requirement in summary mode, accepted at handler entry where
	// the only line parameter is OnEvict's own).
	if bt := fa.la.typeOf(sel.X); bt != nil && fa.isMetaType(bt) {
		if ft := fa.la.typeOf(sel); ft != nil && isNodeIDish(ft) {
			v := fa.canonOf(sel.X, e)
			if v.kind == vCanon && lineRootIsParam(v.path, fa.sum, fa.decl) && !fa.summary {
				return
			}
			if !fa.resident(reqLane, v) {
				fa.failResidency(lhs.Pos(), reqLane, v,
					fmt.Sprintf("chain-link store into %s.%s on a foreign line", typeName(bt), sel.Sel.Name))
			}
		}
	}
}

// lineRootIsParam reports whether a canonical metadata path is rooted at
// one of the enclosing declaration's parameters without a lineof()
// wrapper — i.e. a line/metadata handle the caller handed in directly.
func lineRootIsParam(path string, sum *funcSummary, decl *ast.FuncDecl) bool {
	if _, wrapped := lineInner(path); wrapped {
		return false
	}
	return contains(paramNames(decl), pathRoot(path))
}

// ctrChain reports whether sel's selector chain passes through the Ctr
// field of the coherent Machine.
func (fa *funcAnalysis) ctrChain(sel *ast.SelectorExpr) bool {
	for {
		if sel.Sel.Name == "Ctr" && isMachine(fa.la.typeOf(sel.X)) {
			return true
		}
		switch x := sel.X.(type) {
		case *ast.SelectorExpr:
			sel = x
		case *ast.IndexExpr:
			if s, ok := x.X.(*ast.SelectorExpr); ok {
				sel = s
				continue
			}
			return false
		case *ast.ParenExpr:
			if s, ok := x.X.(*ast.SelectorExpr); ok {
				sel = s
				continue
			}
			return false
		default:
			return false
		}
	}
}

func (fa *funcAnalysis) isMetaType(t types.Type) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	n, ok := t.(*types.Named)
	return ok && fa.la.metaTypes[n]
}

func typeName(t types.Type) string {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// checkNodesIndex fires R1 at m.Nodes[i].
func (fa *funcAnalysis) checkNodesIndex(ix *ast.IndexExpr, e env) {
	sel, ok := ix.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Nodes" || !isMachine(fa.la.typeOf(sel.X)) {
		return
	}
	v := fa.canonOf(ix.Index, e)
	if !fa.resident(reqLane, v) {
		fa.failResidency(ix.Pos(), reqLane, v, fmt.Sprintf("access to m.Nodes[%s]", types.ExprString(ix.Index)))
	}
}

// checkEngineMapField fires R4 on engine-receiver map fields.
func (fa *funcAnalysis) checkEngineMapField(sel *ast.SelectorExpr, e env) {
	bt := fa.la.typeOf(sel.X)
	if bt == nil {
		return
	}
	for {
		if p, ok := bt.(*types.Pointer); ok {
			bt = p.Elem()
			continue
		}
		break
	}
	n, ok := bt.(*types.Named)
	if !ok || n.Obj().Pkg() != fa.la.pkg {
		return
	}
	if _, isEngine := fa.la.engines[n.Obj().Name()]; !isEngine {
		return
	}
	ft := fa.la.typeOf(sel)
	if ft == nil {
		return
	}
	if _, isMap := ft.Underlying().(*types.Map); !isMap {
		return
	}
	if fa.universal {
		return
	}
	key := fa.funcName() + "." + sel.Sel.Name
	if fa.mapFields[key] {
		return
	}
	fa.mapFields[key] = true
	if fa.engine != "" || !fa.summary {
		fa.reportf(sel.Pos(), "engine-global map %s.%s is shared across lanes; hoist it into per-home directory state (m.Dir/m.SetDir)",
			n.Obj().Name(), sel.Sel.Name)
	}
}

// checkEngineSliceIndex fires the R4 slice variant: a per-lane engine
// slice field (e.tombs[i], e.aggs[i]) may only be indexed by a
// lane-resident node — each lane owns exactly its own slot.
func (fa *funcAnalysis) checkEngineSliceIndex(ix *ast.IndexExpr, e env) {
	sel, ok := ix.X.(*ast.SelectorExpr)
	if !ok {
		return
	}
	bt := fa.la.typeOf(sel.X)
	if bt == nil {
		return
	}
	for {
		if p, ok := bt.(*types.Pointer); ok {
			bt = p.Elem()
			continue
		}
		break
	}
	n, ok := bt.(*types.Named)
	if !ok || n.Obj().Pkg() != fa.la.pkg {
		return
	}
	if _, isEngine := fa.la.engines[n.Obj().Name()]; !isEngine {
		return
	}
	ft := fa.la.typeOf(sel)
	if ft == nil {
		return
	}
	if _, isSlice := ft.Underlying().(*types.Slice); !isSlice {
		return
	}
	v := fa.canonOf(ix.Index, e)
	if !fa.resident(reqLane, v) {
		fa.failResidency(ix.Pos(), reqLane, v,
			fmt.Sprintf("per-lane engine state %s.%s[%s]", n.Obj().Name(), sel.Sel.Name, types.ExprString(ix.Index)))
	}
}

func (fa *funcAnalysis) checkCompositeLit(cl *ast.CompositeLit, e env) {
	// Composite literals of metadata types construct the metadata for a
	// line being installed on the constructing lane (CompleteTxn), so
	// message-carried indices in them are plain data — no R3 here; the
	// elements still get the generic sink walk.
	for _, elt := range cl.Elts {
		fa.checkExpr(elt, e)
	}
}

func derefStruct(t types.Type) (*types.Struct, bool) {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// checkCall handles Machine façade calls (R2, R5, scheduling closures)
// and package-local helper calls (summary requirements).
func (fa *funcAnalysis) checkCall(call *ast.CallExpr, e env) {
	defer func() {
		// Always walk arguments and the callee expression for nested
		// sinks; FuncLits in façade positions were consumed below and
		// replaced by nil in argsToWalk.
		for _, a := range fa.argsToWalk(call, e) {
			fa.checkExpr(a, e)
		}
	}()

	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if isSel && isMachine(fa.la.typeOf(sel.X)) {
		switch sel.Sel.Name {
		case "Invalidate", "ReplaceBlock":
			if len(call.Args) >= 1 {
				v := fa.canonOf(call.Args[0], e)
				if !fa.resident(reqLane, v) {
					fa.failResidency(call.Pos(), reqLane, v,
						fmt.Sprintf("m.%s(%s, ...) mutates that node's cache", sel.Sel.Name, types.ExprString(call.Args[0])))
				}
			}
		case "ReleaseHome", "Dir", "SetDir":
			if len(call.Args) >= 1 {
				v := fa.canonOf(call.Args[0], e)
				if !fa.resident(reqHome, v) {
					fa.failResidency(call.Pos(), reqHome, v,
						fmt.Sprintf("m.%s(%s) touches the home directory/gate state", sel.Sel.Name, types.ExprString(call.Args[0])))
				}
			}
		case "SerializeWrite":
			if len(call.Args) == 1 {
				mv := fa.canonOf(call.Args[0], e)
				v := mv
				if mv.kind == vCanon {
					v = canonVal(mv.path + ".Block")
				}
				if !fa.resident(reqHome, v) {
					fa.failResidency(call.Pos(), reqHome, v,
						"m.SerializeWrite touches the home write-serialization state")
				}
			}
		case "ScheduleAt":
			if len(call.Args) == 3 {
				fa.checkScheduledClosure(call.Args[0], call.Args[2], e)
			}
		case "DeferAt":
			// m.DeferAt(issuer, target, fn): the issuer pins the replay
			// order and must be the entry lane; the closure runs on the
			// target's lane.
			if len(call.Args) == 3 {
				iv := fa.canonOf(call.Args[0], e)
				if !fa.resident(reqLane, iv) {
					fa.failResidency(call.Pos(), reqLane, iv,
						fmt.Sprintf("m.DeferAt issuer %s must be the entry lane", types.ExprString(call.Args[0])))
				}
				fa.checkScheduledClosure(call.Args[1], call.Args[2], e)
			}
		case "ReadMem":
			if len(call.Args) == 2 {
				if fn, ok := call.Args[1].(*ast.FuncLit); ok {
					bv := fa.canonOf(call.Args[0], e)
					R, HB := map[string]bool{}, map[string]bool{}
					if bv.kind == vCanon {
						R["home("+bv.path+")"] = true
						HB[bv.path] = true
					}
					sub := fa.cloneFor(R, HB, true, false)
					sub.analyzeBody(fn.Body, e.clone())
				}
			}
		case "ScheduleGlobal", "GlobalOpAt":
			for _, a := range call.Args {
				if fn, ok := a.(*ast.FuncLit); ok {
					sub := fa.cloneFor(nil, nil, true, true)
					if sub.R == nil {
						sub.R = map[string]bool{}
					}
					if sub.HB == nil {
						sub.HB = map[string]bool{}
					}
					sub.analyzeBody(fn.Body, e.clone())
				}
			}
		}
		return
	}

	// Package-local helper with a summary: check its requirements
	// against the argument provenances.
	callee := fa.la.calleeFunc(call)
	if callee == nil {
		return
	}
	s, ok := fa.la.summaries[callee]
	if !ok || len(s.reqs) == 0 {
		return
	}
	for _, r := range s.reqs {
		v := fa.substReqPath(r.path, s.params, call.Args, e)
		if fa.resident(r.kind, v) {
			continue
		}
		what := fmt.Sprintf("call to %s: %s", callee.Name(), r.what)
		fa.failResidency(call.Pos(), r.kind, v, what)
	}
}

// checkScheduledClosure handles the closure argument of
// m.ScheduleAt(n, d, fn) and m.DeferAt(issuer, n, fn): the closure body
// is re-based to n's lane.
func (fa *funcAnalysis) checkScheduledClosure(target, fnArg ast.Expr, e env) {
	fn, ok := fnArg.(*ast.FuncLit)
	if !ok {
		return
	}
	nv := fa.canonOf(target, e)
	R, HB := map[string]bool{}, map[string]bool{}
	sube := e.clone()
	switch nv.kind {
	case vCanon:
		R[nv.path] = true
		if inner, ok := cutWrap(nv.path, "home("); ok {
			HB[inner] = true
		}
	case vForeign, vConst:
		// ScheduleAt(next, ...) / DeferAt(n, next, ...) with a
		// chain-derived index is exactly the sanctioned cross-lane
		// pattern: inside the closure, that variable IS the resident
		// lane. Re-bind it.
		if id, ok := target.(*ast.Ident); ok {
			if obj := fa.la.info.ObjectOf(id); obj != nil {
				sube[obj] = canonVal("@scheduled")
				R["@scheduled"] = true
			}
		}
	}
	sub := fa.cloneFor(R, HB, true, false)
	sub.analyzeBody(fn.Body, sube)
}

// argsToWalk returns the sub-expressions of call that still need the
// generic sink walk: everything except FuncLit bodies consumed by the
// scheduling façade above (those were analyzed under their own context).
func (fa *funcAnalysis) argsToWalk(call *ast.CallExpr, e env) []ast.Expr {
	var out []ast.Expr
	consumedFuncLits := false
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isMachine(fa.la.typeOf(sel.X)) {
		switch sel.Sel.Name {
		case "ScheduleAt", "ReadMem", "ScheduleGlobal", "GlobalOpAt", "DeferAt":
			consumedFuncLits = true
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		out = append(out, sel.X)
	}
	for _, a := range call.Args {
		if _, isLit := a.(*ast.FuncLit); isLit && consumedFuncLits {
			continue
		}
		out = append(out, a)
	}
	return out
}

// substReqPath resolves a callee requirement path against the call-site
// arguments: the path root (a callee parameter name) is replaced by the
// canonical value of the corresponding argument.
func (fa *funcAnalysis) substReqPath(path string, params []string, args []ast.Expr, e env) value {
	if inner, ok := cutWrap(path, "home("); ok {
		v := fa.substReqPath(inner, params, args, e)
		if v.kind == vCanon {
			return canonVal("home(" + v.path + ")")
		}
		return v
	}
	if inner, ok := cutWrap(path, "lineof("); ok {
		v := fa.substReqPath(inner, params, args, e)
		if v.kind == vCanon {
			return canonVal("lineof(" + v.path + ")")
		}
		return v
	}
	root := pathRoot(path)
	idx := -1
	for i, p := range params {
		if p == root {
			idx = i
			break
		}
	}
	if idx < 0 || idx >= len(args) {
		return foreignVal("argument flowing into " + path)
	}
	suffix := strings.TrimPrefix(path, root)
	// A composite-literal argument (e.g. aggKey{n: n, b: b}) resolves a
	// field requirement like "key.n" to the matching element expression.
	if cl, ok := args[idx].(*ast.CompositeLit); ok && suffix != "" {
		segs := strings.Split(strings.TrimPrefix(suffix, "."), ".")
		if len(segs) > 0 && segs[0] != "" {
			for _, el := range cl.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || key.Name != segs[0] {
					continue
				}
				v := fa.canonOf(kv.Value, e)
				if v.kind != vCanon {
					return v
				}
				for _, seg := range segs[1:] {
					v = canonVal(v.path + "." + seg)
				}
				return v
			}
		}
		return foreignVal("composite value")
	}
	av := fa.canonOf(args[idx], e)
	if suffix == "" {
		return av
	}
	if av.kind != vCanon {
		return av
	}
	// Re-apply the dotted suffix through structured derefs.
	v := av
	for _, seg := range strings.Split(strings.TrimPrefix(suffix, "."), ".") {
		if seg == "" {
			continue
		}
		if node, blk, ok := splitTxnPath(v.path); ok {
			switch seg {
			case "Node":
				v = canonVal(node)
				continue
			case "Block":
				v = canonVal(blk)
				continue
			}
		}
		if inner, ok := cutWrap(v.path, "nodeof("); ok && seg == "ID" {
			v = canonVal(inner)
			continue
		}
		v = canonVal(v.path + "." + seg)
	}
	return v
}

// ---------------------------------------------------------------------------
// type helpers

func isNodeIDType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Name() == "NodeID"
}

func isNodeIDish(t types.Type) bool {
	switch t := t.(type) {
	case *types.Slice:
		return isNodeIDType(t.Elem())
	case *types.Array:
		return isNodeIDType(t.Elem())
	default:
		return isNodeIDType(t)
	}
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}
