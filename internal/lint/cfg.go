package lint

// cfg.go builds a basic-block control-flow graph over a function body's
// go/ast. It is deliberately small: laneguard's dataflow only needs the
// join structure of branches and loops to merge value provenance, not an
// exact model of Go control flow. Unstructured constructs are handled
// conservatively:
//
//   - break/continue (with or without labels) edge to the innermost
//     matching loop/switch exit;
//   - goto is approximated by an edge to the function exit (the engine
//     code this analyzer targets never uses goto);
//   - select and labeled statements fall through their bodies;
//   - panic and return edge to the exit block.
//
// A Block holds the statements and standalone expressions (condition
// expressions, range operands) that execute when control reaches it, in
// order. Edges over-approximate: a spurious edge can only merge extra
// provenance into a join, which drives values toward Foreign/Unknown and
// therefore can cause a false positive, never a false negative.

import (
	"go/ast"
)

// Block is a basic block: a straight-line sequence of AST nodes with a
// set of successor blocks.
type Block struct {
	Nodes []ast.Node
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

type cfgBuilder struct {
	g *CFG
	// loop stack for break/continue resolution. Each frame records the
	// block a `break` jumps to and the block a `continue` jumps to
	// (nil continue target for switch frames).
	frames []cfgFrame
}

type cfgFrame struct {
	label   string // statement label, "" if unlabeled
	breakTo *Block
	contTo  *Block // nil for switch/select frames
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// buildCFG constructs the CFG for a function body.
func buildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{}
	b := &cfgBuilder{g: g}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	last := b.stmtList(g.Entry, body.List, "")
	link(last, g.Exit)
	return g
}

// stmtList threads the statements through cur and returns the block that
// control falls out of (nil if the list always transfers control away).
func (b *cfgBuilder) stmtList(cur *Block, list []ast.Stmt, label string) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after return/break; give it its own
			// block so its expressions still get (empty-env) visits.
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s, label)
	}
	return cur
}

func (b *cfgBuilder) stmt(cur *Block, s ast.Stmt, label string) *Block {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		next := b.newBlock()
		link(cur, next)
		return b.stmt(next, s.Stmt, s.Label.Name)

	case *ast.BlockStmt:
		return b.stmtList(cur, s.List, "")

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		after := b.newBlock()
		thenB := b.newBlock()
		link(cur, thenB)
		link(b.stmtList(thenB, s.Body.List, ""), after)
		if s.Else != nil {
			elseB := b.newBlock()
			link(cur, elseB)
			link(b.stmt(elseB, s.Else, ""), after)
		} else {
			link(cur, after)
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		head := b.newBlock()
		link(cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		after := b.newBlock()
		body := b.newBlock()
		link(head, body)
		link(head, after) // cond false (or loop may not iterate)
		b.frames = append(b.frames, cfgFrame{label: label, breakTo: after, contTo: head})
		end := b.stmtList(body, s.Body.List, "")
		b.frames = b.frames[:len(b.frames)-1]
		if end != nil {
			if s.Post != nil {
				end.Nodes = append(end.Nodes, s.Post)
			}
			link(end, head)
		}
		return after

	case *ast.RangeStmt:
		// The range statement itself carries the key/value bindings;
		// the transfer function handles it as a unit at loop head.
		head := b.newBlock()
		link(cur, head)
		head.Nodes = append(head.Nodes, s)
		after := b.newBlock()
		body := b.newBlock()
		link(head, body)
		link(head, after)
		b.frames = append(b.frames, cfgFrame{label: label, breakTo: after, contTo: head})
		end := b.stmtList(body, s.Body.List, "")
		b.frames = b.frames[:len(b.frames)-1]
		link(end, head)
		return after

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.switchBody(cur, s.Body, label, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.switchBody(cur, s.Body, label, nil)

	case *ast.SelectStmt:
		return b.switchBody(cur, s.Body, label, nil)

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		link(cur, b.g.Exit)
		return nil

	case *ast.BranchStmt:
		return b.branch(cur, s)

	case *ast.ExprStmt:
		if isPanicCall(s.X) {
			cur.Nodes = append(cur.Nodes, s)
			link(cur, b.g.Exit)
			return nil
		}
		cur.Nodes = append(cur.Nodes, s)
		return cur

	default:
		// Assign, IncDec, Decl, Go, Defer, Send, Empty, ...
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// switchBody wires each case clause as an alternative successor of cur.
// Fallthrough is approximated by also linking each clause end to after
// (which it does anyway), and a missing default adds a direct edge.
func (b *cfgBuilder) switchBody(cur *Block, body *ast.BlockStmt, label string, contTo *Block) *Block {
	after := b.newBlock()
	b.frames = append(b.frames, cfgFrame{label: label, breakTo: after, contTo: contTo})
	hasDefault := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		var exprs []ast.Expr
		switch cl := cl.(type) {
		case *ast.CaseClause:
			stmts, exprs = cl.Body, cl.List
			if cl.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = cl.Body
			if cl.Comm == nil {
				hasDefault = true
			} else {
				stmts = append([]ast.Stmt{cl.Comm}, stmts...)
			}
		default:
			continue
		}
		clause := b.newBlock()
		for _, e := range exprs {
			clause.Nodes = append(clause.Nodes, e)
		}
		link(cur, clause)
		link(b.stmtList(clause, stmts, ""), after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault {
		link(cur, after)
	}
	return after
}

func (b *cfgBuilder) branch(cur *Block, s *ast.BranchStmt) *Block {
	want := ""
	if s.Label != nil {
		want = s.Label.Name
	}
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if want != "" && f.label != want {
			continue
		}
		switch s.Tok.String() {
		case "break":
			link(cur, f.breakTo)
			return nil
		case "continue":
			if f.contTo == nil {
				continue // switch frame: continue targets enclosing loop
			}
			link(cur, f.contTo)
			return nil
		}
		break
	}
	// goto, fallthrough, or an unresolved label: approximate.
	switch s.Tok.String() {
	case "fallthrough":
		return cur // next clause follows lexically; good enough
	default:
		link(cur, b.g.Exit)
		return nil
	}
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
