package lint

import (
	"strings"
	"testing"
)

// TestAllocGuardFixture proves the escape gate end to end on a fixture
// package: an injected escape in a hotpath function is caught at the
// offending line, a clean hotpath function stays silent, and a
// //dirccvet:allow comment routes through the usual suppression.
func TestAllocGuardFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build")
	}
	pkgs, err := Load("dircc/internal/lint/testdata/allocguard")
	if err != nil {
		t.Fatal(err)
	}
	diags, hotpaths, err := RunAllocGuard(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if hotpaths != 3 {
		t.Errorf("checked %d hotpath functions, want 3 (sum, leak, condoned)", hotpaths)
	}

	var leakDiag, condonedDiag bool
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "hotpath leak allocates"):
			leakDiag = true
			// The diagnostic must name the offending line: the local
			// moved to the heap by the escaping return.
			if !strings.Contains(d.Message, "moved to heap") && !strings.Contains(d.Message, "escapes to heap") {
				t.Errorf("leak diagnostic lost the compiler reason: %s", d.Message)
			}
		case strings.Contains(d.Message, "hotpath condoned allocates"):
			condonedDiag = true
		case strings.Contains(d.Message, "hotpath sum allocates"):
			t.Errorf("false positive in the allocation-free function: %s", d.Message)
		case strings.Contains(d.Message, "cold"):
			t.Errorf("unannotated function reported: %s", d.Message)
		}
	}
	if !leakDiag {
		t.Errorf("injected escape not caught; diagnostics: %v", diags)
	}
	if !condonedDiag {
		t.Errorf("condoned allocation missing pre-suppression; diagnostics: %v", diags)
	}

	// Through RunAnalyzers, the allow comment must suppress condoned's
	// diagnostic and only leak's survive.
	final := RunAnalyzers(pkgs, nil, diags...)
	var survived []string
	for _, d := range final {
		survived = append(survived, d.Message)
		if strings.Contains(d.Message, "condoned") {
			t.Errorf("allow comment failed to suppress: %s", d.Message)
		}
	}
	foundLeak := false
	for _, m := range survived {
		if strings.Contains(m, "hotpath leak allocates") {
			foundLeak = true
		}
	}
	if !foundLeak {
		t.Errorf("leak diagnostic lost in RunAnalyzers: %v", survived)
	}
}

// TestHotpathAnnotationsHold is the real gate: every annotated function
// in the tree must pass escape analysis (modulo reviewed allows). This
// is the programmatic twin of CI's `dirccvet ./...`.
func TestHotpathAnnotationsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build")
	}
	pkgs, err := Load("dircc/...")
	if err != nil {
		t.Fatal(err)
	}
	diags, hotpaths, err := RunAllocGuard(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if hotpaths < 9 {
		t.Errorf("only %d hotpath functions found; the kernel event loop, lane drain and network Send should all be annotated", hotpaths)
	}
	for _, d := range RunAnalyzers(pkgs, nil, diags...) {
		if d.Analyzer == AllocGuardName {
			t.Errorf("%s", d)
		}
	}
}
