package lint

// sarif.go renders diagnostics as a minimal SARIF 2.1.0 log so CI can
// upload dirccvet findings to GitHub code scanning. Only the fields
// code-scanning ingestion requires are emitted: one run, one rule per
// analyzer, one result per diagnostic with a physical location.

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF writes diags as a SARIF 2.1.0 log. File paths are made
// relative to root when possible (code scanning wants repo-relative
// URIs); root may be empty to keep paths as-is.
func WriteSARIF(w io.Writer, diags []Diagnostic, root string) error {
	ruleDocs := map[string]string{}
	for _, a := range All() {
		ruleDocs[a.Name] = a.Doc
	}
	ruleDocs[AllocGuardName] = "//dirccvet:hotpath functions must not heap-allocate (compiler escape analysis)"
	ruleDocs[allowCheckName] = "//dirccvet:allow comments must carry a reason and suppress a real finding"

	ruleIDs := map[string]bool{}
	var results []sarifResult
	for _, d := range diags {
		ruleIDs[d.Analyzer] = true
		uri := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
				uri = rel
			}
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
					Region: sarifRegion{
						StartLine:   max(d.Pos.Line, 1),
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}
	var rules []sarifRule
	for id := range ruleIDs {
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: ruleDocs[id]}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	if results == nil {
		results = []sarifResult{}
	}
	if rules == nil {
		rules = []sarifRule{}
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "dirccvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
