package lint

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand functions that build an
// explicitly seeded generator instead of consulting the global source.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// clockFuncs are the time functions that read the wall clock.
var clockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// SimDet enforces simulation determinism: results must be bit-for-bit
// reproducible from (config, seed), so simulation code must not draw
// from the global math/rand source (unseeded, and shared across
// goroutines in parallel sweeps) or read the wall clock. Workloads
// derive a private rand.New(rand.NewSource(seed)); host-side progress
// timing is the one legitimate wall-clock use and carries an allow
// comment.
var SimDet = &Analyzer{
	Name: "simdet",
	Doc:  "forbid the global math/rand source and wall-clock reads in simulation code",
	Run:  runSimDet,
}

func runSimDet(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "math/rand", "math/rand/v2":
				if !randConstructors[sel.Sel.Name] {
					p.Reportf(call.Pos(),
						"%s.%s draws from the global rand source; use a per-run rand.New(rand.NewSource(seed))",
						id.Name, sel.Sel.Name)
				}
			case "time":
				if clockFuncs[sel.Sel.Name] {
					p.Reportf(call.Pos(),
						"time.%s reads the wall clock; simulated behavior must depend only on sim.Time",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
}
