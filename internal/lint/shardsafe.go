package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShardSafeRule enforces the lane-affinity contract the time-windowed
// parallel kernel depends on (internal/sim.Sharded):
//
//  1. Outside internal/coherent, code must not reach through
//     Machine.Eng to the raw sequential kernel — scheduling must go
//     through the machine façade (Now, ScheduleAt, ScheduleGlobal,
//     GlobalOpAt, RunKernel), which routes onto the correct worker
//     lane under the sharded engine. Sequential-only drivers (the
//     model checker's transport) carry an allow comment.
//
//  2. In any package declaring a shard-safe engine (a type with a
//     ShardSafeEngine method), event-handler code must not mutate the
//     machine-global counters through Machine.Ctr — a data race when
//     handlers run on parallel lanes. Handlers use m.CtrAt(n), the
//     lane-local sink folded deterministically at quiesce. Reading
//     Ctr (reports, post-run assertions) is fine.
var ShardSafeRule = &Analyzer{
	Name: "shardsafe",
	Doc:  "forbid cross-lane machine state access that bypasses the sharded-kernel façade",
	Run:  runShardSafe,
}

const coherentPath = "dircc/internal/coherent"

func runShardSafe(p *Pass) {
	if p.Pkg.Path() == coherentPath {
		// The façade implementation itself owns the kernel.
		return
	}
	ctrGated := declaresShardSafeEngine(p.Pkg)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if n.Sel.Name == "Eng" && isMachine(p.Info.TypeOf(n.X)) {
					p.Reportf(n.Sel.Pos(),
						"Machine.Eng bypasses the scheduling façade and breaks lane affinity under -shards; use Now/ScheduleAt/ScheduleGlobal/RunKernel")
				}
			case *ast.IncDecStmt:
				if ctrGated {
					checkCtrWrite(p, n.X)
				}
			case *ast.AssignStmt:
				if ctrGated {
					for _, lhs := range n.Lhs {
						checkCtrWrite(p, lhs)
					}
				}
			case *ast.UnaryExpr:
				// &m.Ctr (or &m.Ctr.Hist) hands out a mutable alias
				// that escapes the write checks above.
				if ctrGated && n.Op == token.AND && ctrChainExpr(p, n.X) {
					p.Reportf(n.Pos(),
						"takes the address of Machine.Ctr from engine code; the alias defeats the CtrAt lane-local counter rule")
				}
			case *ast.CallExpr:
				// m.Ctr.Add(...), m.Ctr.MsgByType ... — a method with a
				// pointer receiver reached through Ctr can mutate it.
				if ctrGated {
					checkCtrMethodCall(p, n)
				}
			}
			return true
		})
	}
}

// checkCtrWrite reports when the written expression goes through the
// Ctr field of a coherent.Machine (m.Ctr.X++, m.Ctr.M[k] = v, ...).
func checkCtrWrite(p *Pass, expr ast.Expr) {
	for {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			if e.Sel.Name == "Ctr" && isMachine(p.Info.TypeOf(e.X)) {
				p.Reportf(e.Sel.Pos(),
					"writes Machine.Ctr from engine code; handlers on a sharded machine must count through m.CtrAt(n)")
				return
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return
		}
	}
}

// ctrChainExpr reports whether expr's selector chain passes through the
// Ctr field of a coherent.Machine.
func ctrChainExpr(p *Pass, expr ast.Expr) bool {
	for {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			if e.Sel.Name == "Ctr" && isMachine(p.Info.TypeOf(e.X)) {
				return true
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// checkCtrMethodCall reports method calls reached through Machine.Ctr
// whose receiver is a pointer (Counters.Add, Counters.CountMsg,
// Histogram.Observe, ...): they can mutate the machine-global counters
// just like a direct field write. Field reads stay fine.
func checkCtrMethodCall(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !ctrChainExpr(p, sel.X) {
		return
	}
	selection, ok := p.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if _, isPtr := sig.Recv().Type().(*types.Pointer); !isPtr {
		return
	}
	p.Reportf(call.Pos(),
		"calls %s through Machine.Ctr from engine code; pointer-receiver methods mutate the machine-global counters — use m.CtrAt(n)",
		fn.Name())
}

// isMachine reports whether t is coherent.Machine or a pointer to it.
func isMachine(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Machine" && obj.Pkg() != nil && obj.Pkg().Path() == coherentPath
}

// declaresShardSafeEngine reports whether the package declares a type
// with a ShardSafeEngine method — i.e. contains a protocol engine that
// opted into running on parallel lanes, which subjects its handler
// code to the counter-sink rule.
func declaresShardSafeEngine(pkg *types.Package) bool {
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == "ShardSafeEngine" {
				return true
			}
		}
	}
	return false
}
