package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ProbeGuard enforces the nil-probe discipline: the observability
// layer is disabled by leaving Machine.Probe nil, so every call to a
// method on a *obs.Probe value must be dominated by a nil check of the
// same receiver expression — either an enclosing `if p != nil { ... }`
// or an earlier `if p == nil { return }` in the same block. The obs
// package itself is exempt (it is the implementation).
var ProbeGuard = &Analyzer{
	Name: "probeguard",
	Doc:  "require a nil check around every *obs.Probe method call",
	Run:  runProbeGuard,
}

func runProbeGuard(p *Pass) {
	if strings.HasSuffix(p.Pkg.Path(), "internal/obs") {
		return
	}
	for _, f := range p.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := p.Info.Selections[sel]
			if selection == nil || selection.Kind() != types.MethodVal || !isProbePtr(selection.Recv()) {
				return true
			}
			recv := types.ExprString(sel.X)
			if !guardedAt(call, recv, parents) {
				p.Reportf(call.Pos(),
					"call to (%s).%s without a %s != nil guard; a disabled probe is nil",
					recv, sel.Sel.Name, recv)
			}
			return true
		})
	}
}

// isProbePtr reports whether t is *obs.Probe.
func isProbePtr(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Probe" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}

// buildParents records each node's syntactic parent.
func buildParents(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// guardedAt walks from the call up to the function root looking for a
// dominating nil check of recv: an enclosing if whose taken branch
// proves recv non-nil, or an earlier terminating `if recv == nil`
// statement in an enclosing block.
func guardedAt(call ast.Node, recv string, parents map[ast.Node]ast.Node) bool {
	child := call
	for {
		anc := parents[child]
		if anc == nil {
			return false
		}
		switch s := anc.(type) {
		case *ast.IfStmt:
			if child == ast.Node(s.Body) && nilCompares(s.Cond, token.NEQ)[recv] {
				return true
			}
			if s.Else != nil && child == s.Else && nilCompares(s.Cond, token.EQL)[recv] {
				return true
			}
		case *ast.BlockStmt:
			for _, st := range s.List {
				if st == child {
					break
				}
				ifs, ok := st.(*ast.IfStmt)
				if ok && ifs.Else == nil && terminates(ifs.Body) && nilCompares(ifs.Cond, token.EQL)[recv] {
					return true
				}
			}
		}
		child = anc
	}
}

// nilCompares collects the rendered expressions that cond compares
// against nil with op. For op == NEQ the checks may be joined by &&
// (all hold in the taken branch); for op == EQL by || (each failing
// check terminates, so all operands are non-nil afterwards).
func nilCompares(cond ast.Expr, op token.Token) map[string]bool {
	out := make(map[string]bool)
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch b := e.(type) {
		case *ast.ParenExpr:
			walk(b.X)
		case *ast.BinaryExpr:
			if (op == token.NEQ && b.Op == token.LAND) || (op == token.EQL && b.Op == token.LOR) {
				walk(b.X)
				walk(b.Y)
				return
			}
			if b.Op != op {
				return
			}
			switch {
			case isNilIdent(b.Y):
				out[types.ExprString(b.X)] = true
			case isNilIdent(b.X):
				out[types.ExprString(b.Y)] = true
			}
		}
	}
	walk(cond)
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether the block's last statement leaves the
// enclosing scope (return, panic, or a branch).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}
