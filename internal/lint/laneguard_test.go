package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestLaneGuard(t *testing.T) { runTestdata(t, LaneGuard) }

// TestLaneGuardCertifiesShardSafeEngines is the certification the CI
// lint gate relies on: every engine package — all eight engine families
// (fm, l4, b4, ll4, T4, stp, sci, sll) — must declare ShardSafeEngine
// and have zero cross-lane touch points.
func TestLaneGuardCertifiesShardSafeEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the module for export data")
	}
	pkgs, err := Load(
		"dircc/internal/protocol/fullmap",
		"dircc/internal/protocol/limited",
		"dircc/internal/protocol/limitless",
		"dircc/internal/protocol/list",
		"dircc/internal/protocol/stp",
		"dircc/internal/core",
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 6 {
		t.Fatalf("loaded %d packages, want 6", len(pkgs))
	}
	for _, pkg := range pkgs {
		if !declaresShardSafeEngine(pkg.Types) {
			t.Errorf("%s: expected a ShardSafeEngine declaration", pkg.ImportPath)
		}
	}
	for _, d := range RunAnalyzers(pkgs, []*Analyzer{LaneGuard}) {
		t.Errorf("%s", d)
	}
}

// TestLaneGuardInventory pins the cross-lane work-list at EMPTY: since
// the chain/tree restructure routed every cross-lane mutation through
// the scheduling façade (DeferAt/ScheduleAt/GlobalOpAt), all engines
// certify shard-safe and `make inventory` must emit no touch points.
// A regression that reintroduces a direct cross-lane access shows up
// here as a non-empty inventory with the offending file:line.
func TestLaneGuardInventory(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the module for export data")
	}
	pkgs, err := Load(
		"dircc/internal/protocol/fullmap",
		"dircc/internal/protocol/limited",
		"dircc/internal/protocol/limitless",
		"dircc/internal/protocol/list",
		"dircc/internal/protocol/stp",
		"dircc/internal/core",
	)
	if err != nil {
		t.Fatal(err)
	}
	inv := Inventory(pkgs)
	byEngine := map[string]EngineInventory{}
	for _, e := range inv {
		byEngine[e.Package+" "+e.Engine] = e
		if !e.ShardSafe {
			t.Errorf("%s %s: not certified shard-safe", e.Package, e.Engine)
		}
		for _, tp := range e.TouchPoints {
			t.Errorf("%s %s: unexpected cross-lane touch point %s:%d (%s): %s",
				e.Package, e.Engine, filepath.Base(tp.File), tp.Line, tp.Func, tp.Reason)
		}
	}
	// Every engine family must appear: an engine silently dropping out
	// of the inventory would make the empty-work-list assertion vacuous.
	for _, key := range []string{
		"dircc/internal/protocol/list SCI",
		"dircc/internal/protocol/list SLL",
		"dircc/internal/protocol/stp Engine",
		"dircc/internal/core Engine",
	} {
		if _, ok := byEngine[key]; !ok {
			t.Errorf("no inventory for %s (have %v)", key, keysOf(byEngine))
		}
	}
}

func keysOf(m map[string]EngineInventory) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestLaneGuardCatchesDirectChainWalkRevert reverts SCI's deferred
// successor resolution in memory: the ChainData handler calls
// e.successorHop directly on the requester's lane instead of hopping to
// the supplier's lane via m.DeferAt, so the walk reads the supplier's
// line and tombstone cross-lane. Laneguard must fail the mutated call
// site (successorHop's summarized residency requirement on `cur` no
// longer holds), and the unmutated tree must certify clean — proving
// the gate is specific to the bug, not an artifact of the
// neighbourhood.
func TestLaneGuardCatchesDirectChainWalkRevert(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the module for export data")
	}
	const (
		fixed   = "m.DeferAt(n, src, func() { e.successorHop(m, txn, chain, src, 0) })"
		mutated = "e.successorHop(m, txn, chain, src, 0)"
	)
	dir := filepath.Join("..", "protocol", "list")
	src, err := os.ReadFile(filepath.Join(dir, "sci.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), fixed) {
		t.Fatalf("sci.go no longer contains %q; update the mutant test", fixed)
	}

	findingsAt := func(code string) []string {
		t.Helper()
		fset := token.NewFileSet()
		var files []*ast.File
		names, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		mutLine := 0
		for _, name := range names {
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			text, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			if filepath.Base(name) == "sci.go" {
				text = []byte(code)
				for i, l := range strings.Split(code, "\n") {
					if strings.Contains(l, "e.successorHop(m, txn, chain, src, 0)") {
						mutLine = i + 1
						break
					}
				}
			}
			f, err := parser.ParseFile(fset, name, text, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			files = append(files, f)
		}
		if mutLine == 0 {
			t.Fatal("could not locate the successorHop call in sci.go")
		}
		imports := map[string]bool{}
		for _, f := range files {
			for _, spec := range f.Imports {
				imports[strings.Trim(spec.Path.Value, `"`)] = true
			}
		}
		var patterns []string
		for p := range imports {
			patterns = append(patterns, p)
		}
		entries, err := goList(true, patterns...)
		if err != nil {
			t.Fatal(err)
		}
		info := newInfo()
		conf := types.Config{Importer: exportImporter(fset, entries)}
		tpkg, err := conf.Check("dircc/internal/protocol/list", fset, files, info)
		if err != nil {
			t.Fatalf("typecheck mutated list package: %v", err)
		}
		pkg := &Package{ImportPath: tpkg.Path(), Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}
		// The list package is shard-safe, so the gating analyzer itself
		// fires on the mutated call site.
		var out []string
		for _, d := range RunAnalyzers([]*Package{pkg}, []*Analyzer{LaneGuard}) {
			if filepath.Base(d.Pos.Filename) == "sci.go" && d.Pos.Line >= mutLine && d.Pos.Line <= mutLine+1 {
				out = append(out, d.Message)
			}
		}
		return out
	}

	// The mutant's direct call hands successorHop a message-carried
	// supplier index on the wrong lane; the summarized requirement
	// surfaces at the call site.
	carried := regexp.MustCompile(`call to successorHop: .* is not resident`)

	mutant := findingsAt(strings.Replace(string(src), fixed, mutated, 1))
	found := false
	for _, r := range mutant {
		if carried.MatchString(r) {
			found = true
		}
	}
	if !found {
		t.Errorf("reverting the deferred chain walk: no residency finding at the direct call; got %q", mutant)
	}

	clean := findingsAt(string(src))
	for _, r := range clean {
		t.Errorf("unmutated sci.go has a finding at the deferred hop: %q", r)
	}
}

// TestLaneGuardSkipsNonShardSafePackages: gating must not fire in
// packages that never declared a shard-safe engine even if they contain
// cross-lane patterns.
func TestLaneGuardSkipsNonShardSafePackages(t *testing.T) {
	fset := token.NewFileSet()
	src := `package p

type Machine struct{}

func f(xs []int, i int) int { return xs[i] }
`
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := newInfo()
	conf := types.Config{}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{ImportPath: "p", Dir: ".", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{LaneGuard}); len(diags) != 0 {
		t.Errorf("unexpected findings in a non-shard-safe package: %v", diags)
	}
}

// TestCFGShapes sanity-checks the basic-block builder on the control
// structures the engine handlers actually use.
func TestCFGShapes(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"if-else", `if a { x() } else { y() }; z()`},
		{"for-break", `for i := 0; i < n; i++ { if a { break }; x() }`},
		{"range-continue", `for k := range m { if k == 0 { continue }; x() }`},
		{"switch", `switch a { case true: x()
default:
	y()
}`},
		{"labeled", `outer:
for {
	for {
		break outer
	}
}`},
		{"return-mid", `if a { return }; x()`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := fmt.Sprintf(`package p
var (
	a bool
	n int
	m map[int]int
)
func x() {}
func y() {}
func z() {}
func f() {
	%s
}`, c.body)
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, "p.go", src, 0)
			if err != nil {
				t.Fatal(err)
			}
			var body *ast.BlockStmt
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
					body = fd.Body
				}
			}
			g := buildCFG(body)
			if g.Entry == nil || g.Exit == nil || len(g.Blocks) < 2 {
				t.Fatalf("degenerate CFG: %+v", g)
			}
			// Every block must be reachable from entry or be a
			// deliberately detached unreachable-code block; walking from
			// the entry must terminate (no unlinked dangling edges).
			seen := map[*Block]bool{}
			var walk func(b *Block)
			walk = func(b *Block) {
				if seen[b] {
					return
				}
				seen[b] = true
				for _, s := range b.Succs {
					walk(s)
				}
			}
			walk(g.Entry)
			if !seen[g.Exit] && c.name != "labeled" {
				t.Errorf("exit unreachable from entry")
			}
		})
	}
}
