package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestLaneGuard(t *testing.T) { runTestdata(t, LaneGuard) }

// TestLaneGuardCertifiesShardSafeEngines is the certification the CI
// lint gate relies on: the four shard-safe engine packages must have
// zero cross-lane touch points.
func TestLaneGuardCertifiesShardSafeEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the module for export data")
	}
	pkgs, err := Load(
		"dircc/internal/protocol/fullmap",
		"dircc/internal/protocol/limited",
		"dircc/internal/protocol/limitless",
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 3 {
		t.Fatalf("loaded %d packages, want 3", len(pkgs))
	}
	for _, pkg := range pkgs {
		if !declaresShardSafeEngine(pkg.Types) {
			t.Errorf("%s: expected a ShardSafeEngine declaration", pkg.ImportPath)
		}
	}
	for _, d := range RunAnalyzers(pkgs, []*Analyzer{LaneGuard}) {
		t.Errorf("%s", d)
	}
}

// TestLaneGuardInventory pins the cross-lane work-list for the
// non-shard-safe engines (ROADMAP item 1). The exact counts move as the
// engines evolve; what must not silently change is that each engine has
// a non-empty inventory and that the known hazard classes keep being
// attributed to the right lines.
func TestLaneGuardInventory(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the module for export data")
	}
	pkgs, err := Load(
		"dircc/internal/protocol/list",
		"dircc/internal/protocol/stp",
		"dircc/internal/core",
	)
	if err != nil {
		t.Fatal(err)
	}
	inv := Inventory(pkgs)
	byEngine := map[string]EngineInventory{}
	for _, e := range inv {
		byEngine[e.Package+" "+e.Engine] = e
		if e.ShardSafe {
			t.Errorf("%s %s: unexpectedly certified shard-safe", e.Package, e.Engine)
		}
		if len(e.TouchPoints) == 0 {
			t.Errorf("%s %s: empty inventory; the engine is known to have cross-lane touch points", e.Package, e.Engine)
		}
	}
	for _, key := range []string{
		"dircc/internal/protocol/list SCI",
		"dircc/internal/protocol/list SLL",
		"dircc/internal/protocol/stp Engine",
		"dircc/internal/core Engine",
	} {
		if _, ok := byEngine[key]; !ok {
			t.Errorf("no inventory for %s (have %v)", key, keysOf(byEngine))
		}
	}

	// Golden touch points: one representative per hazard class per
	// engine, pinned by file:line and a reason fragment.
	golden := []struct {
		engine string
		file   string
		line   int
		reason string
	}{
		// SCI: requester-side ReleaseHome, chain-link store from the
		// message payload, and the evict-time neighbour splice.
		{"dircc/internal/protocol/list SCI", "sci.go", 234, "m.ReleaseHome(msg.Block) touches the home directory/gate state"},
		{"dircc/internal/protocol/list SCI", "sci.go", 280, "chain-link store of node index msg.Requester (message-carried)"},
		{"dircc/internal/protocol/list SCI", "sci.go", 304, "derived by e.liveSuccessor"},
		{"dircc/internal/protocol/list SCI", "sci.go", 478, "access to m.Nodes[prev]"},
		{"dircc/internal/protocol/list SCI", "sci.go", 489, "access to m.Nodes[next]"},
		// SLL: same classes on the simpler chain.
		{"dircc/internal/protocol/list SLL", "sll.go", 225, "m.ReleaseHome(msg.Block) touches the home directory/gate state"},
		{"dircc/internal/protocol/list SLL", "sll.go", 260, "chain-link store of node index msg.Src (message-carried)"},
		{"dircc/internal/protocol/list SLL", "sll.go", 342, "m.Invalidate(next, ...) mutates that node's cache"},
		// STP: message-carried pointer list into tree metadata.
		{"dircc/internal/protocol/stp Engine", "stp.go", 311, "message-carried pointer list (msg.Ptrs)"},
		{"dircc/internal/protocol/stp Engine", "stp.go", 416, "engine-global map Engine.aggs"},
		// Dir_iTree_k core: child-list stores and the shared aggregates.
		{"dircc/internal/core Engine", "dirtree.go", 517, "derived by childrenOf"},
		{"dircc/internal/core Engine", "dirtree.go", 659, "engine-global map Engine.aggs"},
	}
	for _, g := range golden {
		e, ok := byEngine[g.engine]
		if !ok {
			continue
		}
		found := false
		for _, tp := range e.TouchPoints {
			if filepath.Base(tp.File) == g.file && tp.Line == g.line && strings.Contains(tp.Reason, g.reason) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no touch point %s:%d with reason containing %q", g.engine, g.file, g.line, g.reason)
			for _, tp := range e.TouchPoints {
				if filepath.Base(tp.File) == g.file && tp.Line == g.line {
					t.Logf("  at that line: %s", tp.Reason)
				}
			}
		}
	}
}

func keysOf(m map[string]EngineInventory) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestLaneGuardCatchesStaleSpliceRevert reverts PR 5's SCI stale-splice
// fix in memory (the reply's next pointer came straight from msg.Src
// instead of e.liveSuccessor, splicing evicted nodes back into the
// sharing list) and proves laneguard attributes the mutated line to a
// message-carried index. The unmutated tree must NOT carry that
// attribution at the same site, so the finding is specific to the bug,
// not an artifact of the neighbourhood.
func TestLaneGuardCatchesStaleSpliceRevert(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the module for export data")
	}
	const (
		fixed   = "next := e.liveSuccessor(m, msg.Src, msg.Block)"
		mutated = "next := msg.Src"
	)
	dir := filepath.Join("..", "protocol", "list")
	src, err := os.ReadFile(filepath.Join(dir, "sci.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), fixed) {
		t.Fatalf("sci.go no longer contains %q; update the mutant test", fixed)
	}

	findingsAt := func(code string) []string {
		t.Helper()
		fset := token.NewFileSet()
		var files []*ast.File
		names, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		mutLine := 0
		for _, name := range names {
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			text, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			if filepath.Base(name) == "sci.go" {
				text = []byte(code)
				for i, l := range strings.Split(code, "\n") {
					if strings.Contains(l, "next :=") && strings.Contains(l, "msg.Src") {
						mutLine = i + 1
						break
					}
				}
			}
			f, err := parser.ParseFile(fset, name, text, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			files = append(files, f)
		}
		if mutLine == 0 {
			t.Fatal("could not locate the splice line in sci.go")
		}
		imports := map[string]bool{}
		for _, f := range files {
			for _, spec := range f.Imports {
				imports[strings.Trim(spec.Path.Value, `"`)] = true
			}
		}
		var patterns []string
		for p := range imports {
			patterns = append(patterns, p)
		}
		entries, err := goList(true, patterns...)
		if err != nil {
			t.Fatal(err)
		}
		info := newInfo()
		conf := types.Config{Importer: exportImporter(fset, entries)}
		tpkg, err := conf.Check("dircc/internal/protocol/list", fset, files, info)
		if err != nil {
			t.Fatalf("typecheck mutated list package: %v", err)
		}
		pkg := &Package{ImportPath: tpkg.Path(), Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}
		var out []string
		// The list package is not shard-safe, so the gating analyzer is
		// silent there; the inventory is where the touch point shows up.
		for _, e := range Inventory([]*Package{pkg}) {
			for _, tp := range e.TouchPoints {
				if filepath.Base(tp.File) == "sci.go" && tp.Line >= mutLine && tp.Line <= mutLine+1 {
					out = append(out, tp.Reason)
				}
			}
		}
		return out
	}

	// The clean tree also mentions msg.Src (message-carried) at the
	// liveSuccessor CALL — what only the mutant has is a chain-link
	// STORE of the message-carried index.
	carried := regexp.MustCompile(`chain-link store of node index msg\.Src \(message-carried\)`)

	mutant := findingsAt(strings.Replace(string(src), fixed, mutated, 1))
	found := false
	for _, r := range mutant {
		if carried.MatchString(r) {
			found = true
		}
	}
	if !found {
		t.Errorf("reverting the stale-splice fix: no message-carried attribution at the splice; got %q", mutant)
	}

	clean := findingsAt(string(src))
	for _, r := range clean {
		if carried.MatchString(r) {
			t.Errorf("unmutated sci.go attributed to msg.Src at the splice: %q", r)
		}
	}
	if len(clean) == 0 {
		t.Error("unmutated splice has no inventory entries at all; expected the liveSuccessor-derived store")
	}
	for _, r := range clean {
		if !strings.Contains(r, "liveSuccessor") {
			t.Logf("unmutated splice entry: %s", r)
		}
	}
}

// TestLaneGuardSkipsNonShardSafePackages: gating must not fire in
// packages that never declared a shard-safe engine even if they contain
// cross-lane patterns.
func TestLaneGuardSkipsNonShardSafePackages(t *testing.T) {
	fset := token.NewFileSet()
	src := `package p

type Machine struct{}

func f(xs []int, i int) int { return xs[i] }
`
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := newInfo()
	conf := types.Config{}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{ImportPath: "p", Dir: ".", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{LaneGuard}); len(diags) != 0 {
		t.Errorf("unexpected findings in a non-shard-safe package: %v", diags)
	}
}

// TestCFGShapes sanity-checks the basic-block builder on the control
// structures the engine handlers actually use.
func TestCFGShapes(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"if-else", `if a { x() } else { y() }; z()`},
		{"for-break", `for i := 0; i < n; i++ { if a { break }; x() }`},
		{"range-continue", `for k := range m { if k == 0 { continue }; x() }`},
		{"switch", `switch a { case true: x()
default:
	y()
}`},
		{"labeled", `outer:
for {
	for {
		break outer
	}
}`},
		{"return-mid", `if a { return }; x()`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := fmt.Sprintf(`package p
var (
	a bool
	n int
	m map[int]int
)
func x() {}
func y() {}
func z() {}
func f() {
	%s
}`, c.body)
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, "p.go", src, 0)
			if err != nil {
				t.Fatal(err)
			}
			var body *ast.BlockStmt
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
					body = fd.Body
				}
			}
			g := buildCFG(body)
			if g.Entry == nil || g.Exit == nil || len(g.Blocks) < 2 {
				t.Fatalf("degenerate CFG: %+v", g)
			}
			// Every block must be reachable from entry or be a
			// deliberately detached unreachable-code block; walking from
			// the entry must terminate (no unlinked dangling edges).
			seen := map[*Block]bool{}
			var walk func(b *Block)
			walk = func(b *Block) {
				if seen[b] {
					return
				}
				seen[b] = true
				for _, s := range b.Succs {
					walk(s)
				}
			}
			walk(g.Entry)
			if !seen[g.Exit] && c.name != "labeled" {
				t.Errorf("exit unreachable from entry")
			}
		})
	}
}
