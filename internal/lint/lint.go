// Package lint is a small static-analysis framework in the style of
// go/analysis, self-contained so the repository's custom analyzers run
// with the standard library alone (the container building this repo
// has no module proxy). cmd/dirccvet is the multichecker driver.
//
// The analyzers encode simulator-specific correctness rules that the
// compiler cannot check:
//
//   - simdet: simulation results must be deterministic, so simulation
//     code must not consult the global math/rand source or the wall
//     clock.
//   - maprange: Go map iteration order is random, so a map range loop
//     must not directly feed the event kernel, the network, or a
//     report/trace writer.
//   - probeguard: the observability layer is a nil *obs.Probe when
//     disabled, so probe method calls must be guarded by a nil check.
//   - shardsafe: the parallel kernel partitions nodes across lanes, so
//     engine code must schedule through the Machine façade (never
//     Machine.Eng) and count through per-lane sinks (never writes to
//     Machine.Ctr in shard-safe engine packages).
//   - laneguard: a dataflow analysis over the same lane contract —
//     handler code in shard-safe engine packages must not reach into
//     another node's per-node state with a directory-, chain- or
//     message-derived index outside the scheduling façade (cfg.go,
//     dataflow.go, laneguard.go).
//
// A finding can be suppressed by a `//dirccvet:allow <analyzer> reason`
// comment on the same line or the line above. The reason is mandatory,
// and an allowance that suppresses nothing is itself reported (analyzer
// name "allowcheck") so stale suppressions cannot rot in place.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is the per-package invocation of one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// allowCheckName is the pseudo-analyzer that reports defective or stale
// //dirccvet:allow comments. It is not itself suppressible.
const allowCheckName = "allowcheck"

// All returns the full analyzer suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{SimDet, MapRange, ProbeGuard, ShardSafeRule, LaneGuard}
}

// RunAnalyzers applies the analyzers to every package, drops findings
// suppressed by //dirccvet:allow comments, and returns the rest sorted
// by position. Extra diagnostics produced outside the Analyzer
// interface (e.g. allocguard, which shells out to the compiler) may be
// passed in; they go through the same suppression and stale-allow
// accounting, keyed by their Analyzer name.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, extra ...Diagnostic) []Diagnostic {
	active := map[string]bool{}
	for _, a := range analyzers {
		active[a.Name] = true
	}
	for _, d := range extra {
		active[d.Analyzer] = true
	}
	var out []Diagnostic
	claimed := map[string]bool{} // extra-diag files owned by some package
	for _, pkg := range pkgs {
		files := map[string]bool{}
		for _, f := range pkg.Files {
			files[pkg.Fset.Position(f.Pos()).Filename] = true
		}
		allow := collectAllows(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			a.Run(pass)
			for _, d := range pass.diags {
				if allow.suppressed(d) {
					continue
				}
				out = append(out, d)
			}
		}
		for _, d := range extra {
			if !files[d.Pos.Filename] {
				continue
			}
			claimed[d.Pos.Filename] = true
			if allow.suppressed(d) {
				continue
			}
			out = append(out, d)
		}
		out = append(out, allow.selfLint(active)...)
	}
	// Extra diagnostics in files not covered by any loaded package
	// (nothing to suppress them with) pass through unchanged.
	for _, d := range extra {
		if !claimed[d.Pos.Filename] {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// allowRule is one //dirccvet:allow comment.
type allowRule struct {
	pos    token.Position
	names  []string
	reason string
	used   map[string]bool // analyzer name -> suppressed at least one finding
}

// allowSet maps file -> line -> analyzer name -> rule; each rule covers
// two lines (its own and the one below), pointing at the same struct so
// usage is tracked once.
type allowSet map[string]map[int]map[string]*allowRule

// collectAllows gathers `//dirccvet:allow name[,name] reason` comments.
// An allowance covers findings on its own line and on the line below
// (for a comment placed above the offending statement).
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := make(allowSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//dirccvet:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				rule := &allowRule{
					pos:    pos,
					names:  strings.Split(fields[0], ","),
					reason: strings.Join(fields[1:], " "),
					used:   map[string]bool{},
				}
				lines := set[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]*allowRule)
					set[pos.Filename] = lines
				}
				for _, name := range rule.names {
					for _, ln := range []int{pos.Line, pos.Line + 1} {
						if lines[ln] == nil {
							lines[ln] = make(map[string]*allowRule)
						}
						lines[ln][name] = rule
					}
				}
			}
		}
	}
	return set
}

func (s allowSet) suppressed(d Diagnostic) bool {
	rule := s[d.Pos.Filename][d.Pos.Line][d.Analyzer]
	if rule == nil {
		return false
	}
	rule.used[d.Analyzer] = true
	return true
}

// selfLint reports defective allow comments: a missing reason string,
// and any named analyzer in the active set that suppressed nothing
// (a stale allowance that would silently mask future regressions).
func (s allowSet) selfLint(active map[string]bool) []Diagnostic {
	seen := map[*allowRule]bool{}
	var out []Diagnostic
	for _, lines := range s {
		for _, rules := range lines {
			for _, rule := range rules {
				if seen[rule] {
					continue
				}
				seen[rule] = true
				if rule.reason == "" {
					out = append(out, Diagnostic{
						Pos:      rule.pos,
						Analyzer: allowCheckName,
						Message:  "dirccvet:allow needs a justification after the analyzer list",
					})
				}
				for _, name := range rule.names {
					if active[name] && !rule.used[name] {
						out = append(out, Diagnostic{
							Pos:      rule.pos,
							Analyzer: allowCheckName,
							Message:  fmt.Sprintf("stale dirccvet:allow: %q suppresses no finding here; delete it", name),
						})
					}
				}
			}
		}
	}
	return out
}
