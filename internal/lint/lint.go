// Package lint is a small static-analysis framework in the style of
// go/analysis, self-contained so the repository's custom analyzers run
// with the standard library alone (the container building this repo
// has no module proxy). cmd/dirccvet is the multichecker driver.
//
// The analyzers encode simulator-specific correctness rules that the
// compiler cannot check:
//
//   - simdet: simulation results must be deterministic, so simulation
//     code must not consult the global math/rand source or the wall
//     clock.
//   - maprange: Go map iteration order is random, so a map range loop
//     must not directly feed the event kernel, the network, or a
//     report/trace writer.
//   - probeguard: the observability layer is a nil *obs.Probe when
//     disabled, so probe method calls must be guarded by a nil check.
//   - shardsafe: the parallel kernel partitions nodes across lanes, so
//     engine code must schedule through the Machine façade (never
//     Machine.Eng) and count through per-lane sinks (never writes to
//     Machine.Ctr in shard-safe engine packages).
//
// A finding can be suppressed — with justification — by a
// `//dirccvet:allow <analyzer>` comment on the same line or the line
// above.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is the per-package invocation of one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full analyzer suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{SimDet, MapRange, ProbeGuard, ShardSafeRule}
}

// RunAnalyzers applies the analyzers to every package, drops findings
// suppressed by //dirccvet:allow comments, and returns the rest sorted
// by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		allow := collectAllows(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			a.Run(pass)
			for _, d := range pass.diags {
				if allow.suppressed(d) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// allowSet maps file -> line -> analyzer names allowed there.
type allowSet map[string]map[int]map[string]bool

// collectAllows gathers `//dirccvet:allow name[,name] [reason]`
// comments. An allowance covers findings on its own line and on the
// line below (for a comment placed above the offending statement).
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := make(allowSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//dirccvet:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					set[pos.Filename] = lines
				}
				for _, name := range strings.Split(fields[0], ",") {
					for _, ln := range []int{pos.Line, pos.Line + 1} {
						if lines[ln] == nil {
							lines[ln] = make(map[string]bool)
						}
						lines[ln][name] = true
					}
				}
			}
		}
	}
	return set
}

func (s allowSet) suppressed(d Diagnostic) bool {
	return s[d.Pos.Filename][d.Pos.Line][d.Analyzer]
}
