package lint

import (
	"go/ast"
	"go/types"
)

// emitFuncs name the functions whose call order is observable: kernel
// event scheduling, message transmission, and report/trace emission.
// Feeding any of them from a map range couples observable behavior to
// Go's randomized map iteration order.
var emitFuncs = map[string]bool{
	"Schedule": true, "At": true, "Send": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// MapRange flags map iteration that directly drives event scheduling,
// message sends, or formatted output. The fix is the sortedBlocks
// pattern used throughout the engines: collect the keys, sort, range
// over the slice.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "forbid map iteration order from reaching the event kernel, the network, or emitted output",
	Run:  runMapRange,
}

func runMapRange(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			reported := false
			ast.Inspect(rs.Body, func(m ast.Node) bool {
				if reported {
					return false
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := calleeName(call)
				if emitFuncs[name] {
					p.Reportf(rs.For,
						"map iteration order reaches %s; collect the keys, sort them, and range over the slice",
						name)
					reported = true
					return false
				}
				return true
			})
			return true
		})
	}
}

func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
