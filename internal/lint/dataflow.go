package lint

// dataflow.go is a small forward dataflow solver over the basic-block
// CFG of cfg.go. The abstract state is an environment mapping local
// variables (types.Object) to provenance values; laneguard supplies the
// transfer function. The solver runs a classic worklist fixpoint on
// block-entry environments, then a final visit pass re-applies the
// transfer function with checking enabled so every AST node is inspected
// exactly once under its fixpoint-stable incoming environment.

import (
	"go/ast"
	"go/types"
	"sort"
)

// vkind is the provenance lattice:
//
//	vBottom < vConst < vCanon | vForeign
//
// vConst: a compile-time constant (NoNode, literals) — never a live
// cross-lane index. vCanon: a symbolic path rooted at a handler
// parameter, e.g. "msg.Dst" or "home(msg.Block)"; residency is decided
// by membership in the entry context. vForeign: an index whose origin is
// another node's state (directory entry, chain pointer, sharer set,
// message payload) or is simply untrackable; `why` records the reason
// used in diagnostics.
type vkind int

const (
	vBottom vkind = iota
	vConst
	vCanon
	vForeign
)

type value struct {
	kind vkind
	path string // canonical path for vCanon
	why  string // provenance reason for vForeign
}

var (
	bottomVal = value{kind: vBottom}
	constVal  = value{kind: vConst}
)

func canonVal(path string) value  { return value{kind: vCanon, path: path} }
func foreignVal(why string) value { return value{kind: vForeign, why: why} }

func (v value) join(w value) value {
	switch {
	case v.kind == vBottom:
		return w
	case w.kind == vBottom:
		return v
	case v.kind == vConst:
		// const ⊔ x = x: the constant arm is a sentinel (NoNode) or
		// guard default; the interesting provenance is the other arm.
		return w
	case w.kind == vConst:
		return v
	case v.kind == vForeign:
		return v
	case w.kind == vForeign:
		return w
	case v.path == w.path:
		return v
	// Freshly constructed metadata (laneguard's "@fresh") is owned by
	// whichever lane builds it: joining with a tracked line handle keeps
	// the stricter provenance.
	case v.path == "@fresh":
		return w
	case w.path == "@fresh":
		return v
	default:
		return foreignVal("merged from multiple provenances")
	}
}

// env maps in-scope local variables to provenance values.
type env map[types.Object]value

func (e env) clone() env {
	c := make(env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// joinInto merges o into e, reporting whether e changed.
func (e env) joinInto(o env) bool {
	changed := false
	for k, v := range o {
		old, ok := e[k]
		if !ok {
			e[k] = v
			changed = true
			continue
		}
		nv := old.join(v)
		if nv != old {
			e[k] = nv
			changed = true
		}
	}
	return changed
}

// transferFn applies the abstract effect of one AST node to the
// environment in place. check is false during fixpoint iteration and
// true during the final visit pass (diagnostics are emitted only then,
// so the fixpoint never reports twice).
type transferFn func(n ast.Node, e env, check bool)

// forward runs the worklist fixpoint for cfg starting from entry and
// then performs the reporting pass.
func forward(cfg *CFG, entry env, transfer transferFn) {
	in := map[*Block]env{cfg.Entry: entry}
	// Deterministic worklist order: blocks are created in lexical
	// order, so index order is stable across runs.
	index := make(map[*Block]int, len(cfg.Blocks))
	for i, b := range cfg.Blocks {
		index[b] = i
	}
	work := []*Block{cfg.Entry}
	inWork := map[*Block]bool{cfg.Entry: true}
	pop := func() *Block {
		sort.Slice(work, func(i, j int) bool { return index[work[i]] < index[work[j]] })
		b := work[0]
		work = work[1:]
		inWork[b] = false
		return b
	}
	for iter := 0; len(work) > 0 && iter < 10000; iter++ {
		b := pop()
		e := in[b].clone()
		for _, n := range b.Nodes {
			transfer(n, e, false)
		}
		for _, s := range b.Succs {
			se, ok := in[s]
			if !ok {
				in[s] = e.clone()
			} else if !se.joinInto(e) {
				continue
			}
			if !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
	}
	// Reporting pass: every block once, under its fixpoint in-env.
	for _, b := range cfg.Blocks {
		e, ok := in[b]
		if !ok {
			e = env{} // unreachable block
		}
		e = e.clone()
		for _, n := range b.Nodes {
			transfer(n, e, true)
		}
	}
}
