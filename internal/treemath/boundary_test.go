package treemath

import "testing"

// TestChainIdentity: the first pointer's tree is a chain, so N_1(j)=j
// exactly, well past the table's range.
func TestChainIdentity(t *testing.T) {
	for j := 0; j <= 64; j++ {
		if got := N(1, j); got != int64(j) {
			t.Fatalf("N(1,%d) = %d, want %d", j, got, j)
		}
	}
}

// TestPerfectTreeBranch: for levels at or below the pointer index the
// recurrence bottoms out at the perfect binary tree, N_i(j) = 2^j - 1.
func TestPerfectTreeBranch(t *testing.T) {
	for i := 2; i <= 6; i++ {
		for j := 1; j <= i; j++ {
			if got, want := N(i, j), BinaryTreeNodes(j); got != want {
				t.Errorf("N(%d,%d) = %d, want perfect tree %d", i, j, got, want)
			}
		}
	}
}

func TestMaxNodesZeroLevel(t *testing.T) {
	for i := 1; i <= 4; i++ {
		if got := MaxNodes(i, 0); got != 0 {
			t.Errorf("MaxNodes(%d,0) = %d, want 0", i, got)
		}
	}
}

// TestPaperColumnValues pins the reconstruction against the printed
// Dir_4Tree_2 rows it is documented to match (levels 3 and 6..12).
func TestPaperColumnValues(t *testing.T) {
	for _, level := range []int{3, 6, 7, 8, 9, 10, 11, 12} {
		want := PaperTable4[level][1]
		if got := PaperColumn(4, level); got != want {
			t.Errorf("PaperColumn(4,%d) = %d, paper prints %d", level, got, want)
		}
	}
	// Levels 4 and 5 are the rows where the paper's column instead
	// matches MaxNodes — the documented mixed reading.
	for _, level := range []int{4, 5} {
		want := PaperTable4[level][1]
		if got := MaxNodes(4, level); got != want {
			t.Errorf("MaxNodes(4,%d) = %d, paper prints %d", level, got, want)
		}
	}
}

// TestLevelForAgreesWithMaxNodes: LevelFor is the inverse of MaxNodes —
// the returned level reaches n, and the level below does not.
func TestLevelForAgreesWithMaxNodes(t *testing.T) {
	for i := 1; i <= 4; i++ {
		for level := 1; level <= 8; level++ {
			n := MaxNodes(i, level)
			if n == 0 {
				continue
			}
			got := LevelFor(i, n)
			if MaxNodes(i, got) < n {
				t.Fatalf("LevelFor(%d,%d) = %d does not reach %d", i, n, got, n)
			}
			if got > 1 && MaxNodes(i, got-1) >= n {
				t.Fatalf("LevelFor(%d,%d) = %d is not minimal", i, n, got)
			}
			if next := MaxNodes(i, level) + 1; LevelFor(i, next) <= level && MaxNodes(i, level) < next {
				t.Fatalf("LevelFor(%d,%d) did not advance past level %d", i, next, level)
			}
		}
	}
}

func TestLevelForNonPositive(t *testing.T) {
	if LevelFor(2, 0) != 0 || LevelFor(2, -5) != 0 {
		t.Error("LevelFor of a non-positive count should be 0")
	}
}

func TestMaxNodesNegativeLevelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MaxNodes with a negative level did not panic")
		}
	}()
	MaxNodes(2, -1)
}
