// Package treemath implements the analytical tree-capacity results of
// the paper's Section 3: the recurrences behind Tables 3 and 4, which
// bound how many processors a Dir_iTree_2 forest of a given height can
// record.
//
// For Dir_2Tree_2 the paper derives (Table 3):
//
//	N_1(j) = j             (pointer P0's tree: a chain)
//	N_2(j) = 3 + Σ_{k=2}^{j-1} (N_1(k)+1) = j(j+1)/2
//
// and generalizes (Section 3.A) to
//
//	N_i(j) = 2^i - 1 + Σ_{k=i}^{j-1} (N_{i-1}(k) + 1)
//
// for the i-th pointer of Dir_iTree_2. Table 4 tabulates the maximum
// total number of processors recorded versus the tree level for
// Dir_2Tree_2 and Dir_4Tree_2 against a perfect binary tree (2^j - 1).
package treemath

import "fmt"

// N returns N_i(j): the maximum number of processors in the j-level
// tree pointed to by the i-th directory pointer (1-based) of a
// Dir_iTree_2 scheme, per the paper's recurrence.
//
// N_1(j) = j; N_i(j) = 2^i - 1 + Σ_{k=i}^{j-1} (N_{i-1}(k) + 1).
func N(i, j int) int64 {
	if i < 1 || j < 0 {
		panic(fmt.Sprintf("treemath: N(%d,%d) out of domain", i, j))
	}
	memo := make(map[[2]int]int64)
	return nMemo(i, j, memo)
}

func nMemo(i, j int, memo map[[2]int]int64) int64 {
	if j <= 0 {
		return 0
	}
	if i == 1 {
		return int64(j)
	}
	if j <= i {
		// A tree of level j <= i from the i-th pointer is at best a
		// perfect binary tree of height j.
		return (int64(1) << uint(j)) - 1
	}
	key := [2]int{i, j}
	if v, ok := memo[key]; ok {
		return v
	}
	// 2^i - 1 plus one merged (N_{i-1}(k)) tree + 1 new root per level
	// beyond i.
	v := (int64(1) << uint(i)) - 1
	for k := i; k <= j-1; k++ {
		v += nMemo(i-1, k, memo) + 1
	}
	memo[key] = v
	return v
}

// MaxNodes returns the Table 4 value: the maximum number of processors
// a Dir_iTree_2 directory can record when its tallest tree has the
// given level, i.e. Σ_{p=1}^{i} N_p(level).
func MaxNodes(i, level int) int64 {
	if i < 1 || level < 0 {
		panic(fmt.Sprintf("treemath: MaxNodes(%d,%d) out of domain", i, level))
	}
	var sum int64
	memo := make(map[[2]int]int64)
	for p := 1; p <= i; p++ {
		sum += nMemo(p, level, memo)
	}
	return sum
}

// PaperColumn reconstructs the formula that generates most of the
// paper's printed Dir_iTree_2 column in Table 4: N_i(level+1) + 1.
// Rows 3 and 6..12 of the paper's Dir_4Tree_2 column match this
// expression exactly (16, 99, 163, 256, 386, 562, 794, 1093), while
// rows 4 and 5 (43, 75) instead match MaxNodes — the paper's column
// mixes two readings of "maximum nodes at level j". EXPERIMENTS.md
// tabulates both against the printed values.
func PaperColumn(i, level int) int64 {
	return N(i, level+1) + 1
}

// BinaryTreeNodes returns 2^level - 1, the capacity of the perfect
// binary tree maintained by STP or the SCI tree extension (Table 4's
// last column).
func BinaryTreeNodes(level int) int64 {
	if level < 0 {
		panic("treemath: negative level")
	}
	if level >= 63 {
		// 2^63-1 saturates int64; no simulated machine approaches it.
		return 1<<63 - 1
	}
	return (int64(1) << uint(level)) - 1
}

// LevelFor returns the smallest tree level whose Dir_iTree_2 capacity
// reaches n processors — the paper's "a 1024-node system needs a
// 12-level tree under Dir_4Tree_2" style statement.
func LevelFor(i int, n int64) int {
	if n <= 0 {
		return 0
	}
	for level := 1; ; level++ {
		if MaxNodes(i, level) >= n {
			return level
		}
	}
}

// Table3Row returns (N_1(j), N_2(j)) for Dir_2Tree_2, plus the paper's
// closed forms (j, j(j+1)/2) for cross-checking.
func Table3Row(j int) (n1, n2, closed1, closed2 int64) {
	n1 = N(1, j)
	n2 = N(2, j)
	closed1 = int64(j)
	closed2 = int64(j) * int64(j+1) / 2
	return
}

// Table4 returns the rows of the paper's Table 4 for levels 3..12:
// level, Dir_2Tree_2, Dir_4Tree_2, perfect binary tree.
func Table4() [][4]int64 {
	var rows [][4]int64
	for level := 3; level <= 12; level++ {
		rows = append(rows, [4]int64{
			int64(level),
			MaxNodes(2, level),
			MaxNodes(4, level),
			BinaryTreeNodes(level),
		})
	}
	return rows
}

// PaperTable4 holds the values printed in the paper for comparison in
// EXPERIMENTS.md. Note the paper's Dir_4Tree_2 column contains at least
// one typographical inconsistency (level 6 prints 99); see the
// EXPERIMENTS.md discussion.
var PaperTable4 = map[int][3]int64{
	3:  {9, 16, 7},
	4:  {14, 43, 15},
	5:  {20, 75, 31},
	6:  {27, 99, 63},
	7:  {35, 163, 127},
	8:  {44, 256, 255},
	9:  {54, 386, 511},
	10: {65, 562, 1023},
	11: {77, 794, 2047},
	12: {90, 1093, 4095},
}
