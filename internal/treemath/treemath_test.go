package treemath

import (
	"testing"
	"testing/quick"
)

// Table 3: N_1(j) = j and N_2(j) = j(j+1)/2, matching the paper's
// closed forms.
func TestTable3ClosedForms(t *testing.T) {
	for j := 1; j <= 40; j++ {
		n1, n2, c1, c2 := Table3Row(j)
		if n1 != c1 {
			t.Fatalf("N1(%d) = %d, want %d", j, n1, c1)
		}
		if n2 != c2 {
			t.Fatalf("N2(%d) = %d, want %d", j, n2, c2)
		}
	}
}

// The Dir_2Tree_2 column of the paper's Table 4 must match exactly.
func TestTable4Dir2Tree2MatchesPaper(t *testing.T) {
	for level, row := range PaperTable4 {
		if got := MaxNodes(2, level); got != row[0] {
			t.Errorf("MaxNodes(2,%d) = %d, paper %d", level, got, row[0])
		}
	}
}

// The binary-tree column must match exactly.
func TestTable4BinaryMatchesPaper(t *testing.T) {
	for level, row := range PaperTable4 {
		if got := BinaryTreeNodes(level); got != row[2] {
			t.Errorf("BinaryTreeNodes(%d) = %d, paper %d", level, got, row[2])
		}
	}
}

// The paper's Dir_4Tree_2 column is internally inconsistent: rows 3 and
// 6..12 follow N_4(level+1)+1 while rows 4..5 follow ΣN_p(level). Pin
// down that reconstruction so the discrepancy stays documented.
func TestTable4Dir4Tree2PaperReconstruction(t *testing.T) {
	for _, level := range []int{3, 6, 7, 8, 9, 10, 11, 12} {
		if got, want := PaperColumn(4, level), PaperTable4[level][1]; got != want {
			t.Errorf("PaperColumn(4,%d) = %d, paper prints %d", level, got, want)
		}
	}
	for _, level := range []int{4, 5} {
		if got, want := MaxNodes(4, level), PaperTable4[level][1]; got != want {
			t.Errorf("MaxNodes(4,%d) = %d, paper prints %d", level, got, want)
		}
	}
}

// The paper's Table 4 commentary: a 1024-node system under Dir_4Tree_2
// needs a 12-level tree, "only one level more than the balanced binary
// tree" (which needs 11 levels for 1024 > 2^10-1).
func TestThousandNodeClaim(t *testing.T) {
	if PaperColumn(4, 12) < 1024 {
		t.Errorf("paper claims level 12 suffices for 1024 nodes; reconstruction gives %d", PaperColumn(4, 12))
	}
	if PaperColumn(4, 11) >= 1024 {
		t.Errorf("level 11 should not reach 1024 nodes, got %d", PaperColumn(4, 11))
	}
	binLevel := 0
	for BinaryTreeNodes(binLevel) < 1024 {
		binLevel++
	}
	if binLevel != 11 {
		t.Errorf("binary tree level for 1024 = %d, want 11", binLevel)
	}
}

func TestNSmallCases(t *testing.T) {
	cases := []struct {
		i, j int
		want int64
	}{
		{1, 1, 1}, {1, 5, 5},
		{2, 1, 1}, {2, 2, 3}, {2, 3, 6},
		{3, 3, 7}, {3, 4, 14}, {3, 5, 25},
		{4, 4, 15}, {4, 5, 30}, {4, 6, 56}, {4, 7, 98},
	}
	for _, c := range cases {
		if got := N(c.i, c.j); got != c.want {
			t.Errorf("N(%d,%d) = %d, want %d", c.i, c.j, got, c.want)
		}
	}
}

func TestNZeroLevel(t *testing.T) {
	if N(3, 0) != 0 {
		t.Error("N(i,0) should be 0")
	}
}

func TestDomainPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { N(0, 3) },
		func() { N(2, -1) },
		func() { MaxNodes(0, 3) },
		func() { BinaryTreeNodes(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-domain call did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestLevelFor(t *testing.T) {
	if got := LevelFor(2, 9); got != 3 {
		t.Errorf("LevelFor(2,9) = %d, want 3", got)
	}
	if got := LevelFor(2, 10); got != 4 {
		t.Errorf("LevelFor(2,10) = %d, want 4", got)
	}
	if got := LevelFor(4, 1); got != 1 {
		t.Errorf("LevelFor(4,1) = %d, want 1", got)
	}
	if LevelFor(4, 0) != 0 {
		t.Error("LevelFor(_,0) should be 0")
	}
}

// Properties: N is nondecreasing in both arguments, and more pointers
// record more (or equal) processors at any level.
func TestQuickMonotonicity(t *testing.T) {
	f := func(iRaw, jRaw uint8) bool {
		i := int(iRaw%6) + 1
		j := int(jRaw % 16)
		if N(i, j) > N(i, j+1) {
			return false
		}
		if N(i, j) > N(i+1, j) {
			return false
		}
		return MaxNodes(i, j) <= MaxNodes(i+1, j) && MaxNodes(i, j) <= MaxNodes(i, j+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a level-j tree can never exceed the perfect binary tree of
// the same height.
func TestQuickBinaryBound(t *testing.T) {
	f := func(iRaw, jRaw uint8) bool {
		i := int(iRaw%6) + 1
		j := int(jRaw % 14)
		return N(i, j) <= BinaryTreeNodes(j)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTable4Shape(t *testing.T) {
	rows := Table4()
	if len(rows) != 10 || rows[0][0] != 3 || rows[9][0] != 12 {
		t.Fatalf("Table4 rows malformed: %v", rows)
	}
}

func TestBinaryTreeNodesSaturates(t *testing.T) {
	if got := BinaryTreeNodes(63); got != 1<<63-1 {
		t.Fatalf("BinaryTreeNodes(63) = %d", got)
	}
	if got := BinaryTreeNodes(100); got != 1<<63-1 {
		t.Fatalf("BinaryTreeNodes(100) = %d, want saturation", got)
	}
	if BinaryTreeNodes(62) != (int64(1)<<62)-1 {
		t.Fatal("BinaryTreeNodes(62) wrong")
	}
}
