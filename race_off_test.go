//go:build !race

package dircc

const raceEnabled = false
