package dircc_test

import (
	"fmt"
	"log"

	"dircc"
)

// The smallest complete simulation: one writer, many readers, under the
// paper's protocol on the paper's machine.
func Example() {
	eng, err := dircc.NewEngine("Dir4Tree2")
	if err != nil {
		log.Fatal(err)
	}
	m, err := dircc.NewMachine(dircc.DefaultConfig(8), eng)
	if err != nil {
		log.Fatal(err)
	}
	addr := m.Alloc(8)
	_, err = dircc.RunBody(m, func(e dircc.Env) {
		if e.ID() == 0 {
			e.Write(addr, 42)
		}
		e.Barrier()
		e.Read(addr)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("value:", m.Store.Value(m.BlockOf(addr)))
	// Output: value: 42
}

// Reproducing one point of the paper's Table 1: the Dir_4Tree_2 read
// miss costs two messages regardless of how many processors share the
// block.
func ExampleMeasureMisses() {
	res, err := dircc.MeasureMisses("Dir4Tree2", 32, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("read miss messages:", res.ReadMiss)
	// Output: read miss messages: 2
}

// The analytical Table 4: how many processors a Dir_2Tree_2 forest of
// level 4 can record.
func ExampleTable4Row() {
	dir2, _, _, binary := dircc.Table4Row(4)
	fmt.Println(dir2, binary)
	// Output: 14 15
}

// Running a full workload under a protocol and checking its result
// against the serial reference happens in one call.
func ExampleRunExperiment() {
	r, err := dircc.RunExperiment(dircc.Experiment{
		App: "fft", Protocol: "T4", Procs: 8, Check: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified:", r.Cycles > 0 && r.Counters.Messages > 0)
	// Output: verified: true
}

// Atomic fetch-and-add serializes at the block's home under every
// protocol.
func ExampleEnv_fetchAdd() {
	eng, _ := dircc.NewEngine("fm")
	m, _ := dircc.NewMachine(dircc.DefaultConfig(4), eng)
	addr := m.Alloc(8)
	_, err := dircc.RunBody(m, func(e dircc.Env) {
		e.FetchAdd(addr, 1)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("counter:", m.Store.Value(m.BlockOf(addr)))
	// Output: counter: 4
}
