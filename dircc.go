// Package dircc is a production-quality reproduction of the hybrid
// tree-based cache coherence protocol of Chang and Bhuyan, "An
// Efficient Hybrid Cache Coherence Protocol for Shared Memory
// Multiprocessors" (ICPP 1996).
//
// The package bundles an execution-driven multiprocessor simulator in
// the spirit of Proteus — a deterministic event kernel, a wormhole-
// routed binary n-cube interconnect, per-node caches and home
// directories — together with a family of directory cache coherence
// protocol engines:
//
//   - fm           — full-map directory (Dir_nNB), the baseline
//   - Dir_iNB      — limited directory, pointer eviction on overflow
//   - Dir_iB       — limited directory, broadcast on overflow
//   - LimitLESS_i  — software-extended limited directory (trap costs)
//   - Dir_iTree_k  — the paper's hybrid protocol (package internal/core)
//   - Dir_iTree_kU — its update-based variant (an extension; the paper
//     mentions update protocols but evaluates only invalidation)
//   - sll          — singly linked list (Stanford/Thapar)
//   - sci          — IEEE 1596 Scalable Coherent Interface (doubly
//     linked list)
//   - stp          — Scalable Tree Protocol (balanced binary tree)
//
// and the paper's four evaluation workloads (MP3D, LU, Floyd-Warshall,
// FFT) — plus a nearest-neighbor SOR grid — as real Go programs issuing
// loads and stores through the simulated shared memory, each verified
// against a serial reference after every run.
//
// Beyond the paper's setup, the machine offers trace record/replay and
// Weber-Gupta invalidation-pattern analysis (RecordTrace, ReplayTrace,
// internal/trace), atomic fetch-and-add serialized at the home
// (Env.FetchAdd), memory-based ticket locks (Config.MemLocks), a
// TSO-style store buffer (Config.WriteBuffer), alternative interconnects
// (Experiment.Topology) and home mappings (Config.HomePageBlocks) — all
// ablated in the bench suite.
//
// # Quick start
//
//	eng, _ := dircc.NewEngine("Dir4Tree2")
//	m, _ := dircc.NewMachine(dircc.DefaultConfig(16), eng)
//	addr := m.Alloc(8)
//	cycles, _ := dircc.RunBody(m, func(e dircc.Env) {
//	    if e.ID() == 0 {
//	        e.Write(addr, 42)
//	    }
//	    e.Barrier()
//	    _ = e.Read(addr)
//	})
//
// Higher-level experiment drivers reproduce each table and figure of
// the paper; see RunExperiment, RunExperiments (a worker pool over a
// grid), NormalizedTimes, and the cmd/ tools.
package dircc

import (
	"dircc/internal/coherent"
	"dircc/internal/proc"
	"dircc/internal/sim"
	"dircc/internal/stats"
)

// Env is the shared-memory programming interface simulated application
// code runs against: Read, Write, Compute, Barrier, Lock/Unlock.
type Env = proc.Env

// Machine is a simulated shared-memory multiprocessor: processors,
// caches, home directories and the interconnect.
type Machine = coherent.Machine

// Config describes the simulated machine (Table 5 of the paper).
type Config = coherent.Config

// Engine is a pluggable cache coherence protocol.
type Engine = coherent.Engine

// Counters aggregates the statistics of one run.
type Counters = stats.Counters

// Time is a simulated clock value in cycles.
type Time = sim.Time

// DefaultConfig returns the paper's Table 5 machine configuration for
// the given processor count: 16 KB fully-associative caches with
// 8-byte blocks, a binary n-cube with 8-bit links and 1-cycle switch
// delay, 5-cycle memory and 1-cycle cache access.
func DefaultConfig(procs int) Config { return coherent.DefaultConfig(procs) }

// NewMachine builds a simulated multiprocessor running the given
// protocol over a hypercube sized for cfg.Procs.
func NewMachine(cfg Config, engine Engine) (*Machine, error) {
	return coherent.NewMachine(cfg, engine)
}

// RunBody executes body on every processor of m (execution-driven, one
// goroutine per processor, deterministically scheduled) and returns the
// total simulated cycles.
func RunBody(m *Machine, body func(Env)) (Time, error) {
	return proc.Run(m, body)
}
