package dircc

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestParallelExports runs a sweep-style grid at high parallelism with
// per-experiment trace and time-series exports written from the worker
// callbacks — the cmd/sweep -trace-dir -j N path — and verifies every
// grid point produced a complete, parseable pair of files. Run under
// `make race` this doubles as the data-race regression for concurrent
// WriteExports.
func TestParallelExports(t *testing.T) {
	traceDir := t.TempDir()
	tsDir := t.TempDir()

	var exps []Experiment
	for _, app := range []string{"floyd", "fft"} {
		for _, scheme := range []string{"fm", "T4", "sll"} {
			exps = append(exps, Experiment{
				App: app, Protocol: scheme, Procs: 8,
				Obs: &ObsConfig{Trace: true, SampleEvery: 5000},
			})
		}
	}

	// Export from the completion callback, like cmd/sweep does — but
	// concurrently from the worker goroutines rather than after the
	// grid, to exercise simultaneous writers.
	var wg sync.WaitGroup
	errs := make(chan error, len(exps))
	onDone := func(i int, r ResultOrErr) {
		if r.Err != nil {
			errs <- fmt.Errorf("experiment %d: %w", i, r.Err)
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := WriteExports(exps[i], r.Result, traceDir, tsDir); err != nil {
				errs <- err
			}
		}()
	}
	RunExperimentsProgress(context.Background(), exps, 4, onDone)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for _, exp := range exps {
		stem := ExportStem(exp)

		// The Chrome trace must be a complete JSON document (an
		// interleaved or truncated write would fail to parse) with a
		// plausible event population.
		raw, err := os.ReadFile(filepath.Join(traceDir, stem+".trace.json"))
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("%s.trace.json is not valid JSON (torn write?): %v", stem, err)
		}
		if len(doc.TraceEvents) < 100 {
			t.Errorf("%s.trace.json has only %d events", stem, len(doc.TraceEvents))
		}

		// The time series must have the header and at least one row.
		csv, err := os.ReadFile(filepath.Join(tsDir, stem+".timeseries.csv"))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
		if !strings.HasPrefix(lines[0], "cycle,") {
			t.Errorf("%s.timeseries.csv header = %q", stem, lines[0])
		}
		if len(lines) < 2 {
			t.Errorf("%s.timeseries.csv has no data rows", stem)
		}
	}
}

// TestExportStem pins the file-naming contract the analysis tooling
// globs for.
func TestExportStem(t *testing.T) {
	if got := ExportStem(Experiment{App: "mp3d", Protocol: "T4", Procs: 32}); got != "mp3d_T4_32_hypercube" {
		t.Errorf("stem = %q", got)
	}
	if got := ExportStem(Experiment{App: "lu", Protocol: "sci", Procs: 8, Topology: "torus"}); got != "lu_sci_8_torus" {
		t.Errorf("stem = %q", got)
	}
}
