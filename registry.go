package dircc

import (
	"fmt"
	"strconv"
	"strings"

	"dircc/internal/apps"
	"dircc/internal/coherent"
	"dircc/internal/core"
	"dircc/internal/protocol/fullmap"
	"dircc/internal/protocol/limited"
	"dircc/internal/protocol/limitless"
	"dircc/internal/protocol/list"
	"dircc/internal/protocol/stp"
)

// NewEngine builds a protocol engine from a scheme name. Accepted
// spellings (case-insensitive):
//
//	"fm", "fullmap"          full-map directory
//	"L4", "Dir4NB"           limited directory, 4 pointers, non-broadcast
//	"B4", "Dir4B"            limited directory, 4 pointers, broadcast
//	"T4", "Dir4Tree2"        the paper's hybrid, 4 pointers, binary trees
//	"Dir4Tree4"              hybrid with 4-ary trees
//	"LL4", "LimitLESS4"      software-extended limited directory
//	"T4U", "Dir4Tree2U"      update-based hybrid variant (extension)
//
// plus the linked-list baselines "sll", "sci" and the tree baseline
// "stp" once registered by their packages. Engines hold per-machine
// state: build a fresh one per NewMachine.
func NewEngine(name string) (Engine, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	switch n {
	case "fm", "fullmap":
		return fullmap.New(), nil
	}
	if f, ok := extraEngines[n]; ok {
		return f(), nil
	}
	if rest, ok := strings.CutPrefix(n, "limitless"); ok {
		if i, err := strconv.Atoi(rest); err == nil && i >= 1 {
			return limitless.New(i), nil
		}
	}
	if rest, ok := strings.CutPrefix(n, "ll"); ok {
		if i, err := strconv.Atoi(rest); err == nil && i >= 1 {
			return limitless.New(i), nil
		}
	}
	if rest, ok := strings.CutPrefix(n, "l"); ok {
		if i, err := strconv.Atoi(rest); err == nil && i >= 1 {
			return limited.NewNB(i), nil
		}
	}
	if rest, ok := strings.CutPrefix(n, "b"); ok {
		if i, err := strconv.Atoi(rest); err == nil && i >= 1 {
			return limited.NewB(i), nil
		}
	}
	if rest, ok := strings.CutPrefix(n, "t"); ok {
		if i, err := strconv.Atoi(rest); err == nil && i >= 1 {
			return core.New(i, 2), nil
		}
		if iPart, ok := strings.CutSuffix(rest, "u"); ok {
			if i, err := strconv.Atoi(iPart); err == nil && i >= 1 {
				return core.NewWithOptions(i, 2, core.Options{Update: true}), nil
			}
		}
	}
	if rest, ok := strings.CutPrefix(n, "dir"); ok {
		switch {
		case strings.Contains(rest, "tree"):
			parts := strings.SplitN(rest, "tree", 2)
			update := false
			if kPart, ok := strings.CutSuffix(parts[1], "u"); ok {
				update = true
				parts[1] = kPart
			}
			i, err1 := strconv.Atoi(parts[0])
			k, err2 := strconv.Atoi(parts[1])
			if err1 == nil && err2 == nil && i >= 1 && k >= 1 {
				return core.NewWithOptions(i, k, core.Options{Update: update}), nil
			}
		case strings.HasSuffix(rest, "nb"):
			if i, err := strconv.Atoi(strings.TrimSuffix(rest, "nb")); err == nil && i >= 1 {
				return limited.NewNB(i), nil
			}
		case strings.HasSuffix(rest, "b"):
			if i, err := strconv.Atoi(strings.TrimSuffix(rest, "b")); err == nil && i >= 1 {
				return limited.NewB(i), nil
			}
		}
	}
	return nil, fmt.Errorf("dircc: unknown protocol %q (try fm, L4, B4, T4, Dir4Tree2, sll, sci, stp)", name)
}

// extraEngines maps the linked-list and balanced-tree baselines.
var extraEngines = map[string]func() coherent.Engine{
	"sll": func() coherent.Engine { return list.NewSLL() },
	"sci": func() coherent.Engine { return list.NewSCI() },
	"stp": func() coherent.Engine { return stp.New() },
}

// PaperSchemes returns the scheme names of the paper's Figures 8-11 in
// plot order: fm, L8, L4, L2, L1, T8, T4, T2, T1.
func PaperSchemes() []string {
	return []string{"fm", "L8", "L4", "L2", "L1", "T8", "T4", "T2", "T1"}
}

// NewApp builds one of the paper's workloads by name — "mp3d", "lu",
// "floyd", "fft" — or the extra nearest-neighbor workload "sor".
// With full=true the paper-scale parameters are used
// (3000 particles / 10 steps, 128x128 matrix, 32 vertices, 4096-point
// FFT); otherwise a scaled-down configuration suitable for quick runs
// and benchmarks.
func NewApp(name string, full bool) (apps.App, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "mp3d":
		if full {
			return apps.DefaultMP3D(), nil
		}
		return &apps.MP3D{Particles: 1000, Steps: 5, CellsPerDim: 6, Seed: 1}, nil
	case "lu":
		if full {
			return apps.DefaultLU(), nil
		}
		return &apps.LU{N: 48, Seed: 2}, nil
	case "floyd":
		if full {
			return apps.DefaultFloyd(), nil
		}
		return &apps.Floyd{V: 24, EdgeProb: 0.25, Seed: 3}, nil
	case "fft":
		if full {
			return &apps.FFT{Points: 4096, Seed: 4}, nil
		}
		return apps.DefaultFFT(), nil
	case "sor":
		if full {
			return &apps.SOR{N: 96, Iters: 12, Seed: 6}, nil
		}
		return apps.DefaultSOR(), nil
	}
	return nil, fmt.Errorf("dircc: unknown workload %q (try mp3d, lu, floyd, fft, sor)", name)
}

// PaperApps returns the four workloads of the paper's evaluation.
func PaperApps() []string { return []string{"mp3d", "lu", "floyd", "fft"} }
