module dircc

go 1.22
