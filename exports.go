package dircc

import (
	"fmt"
	"os"
	"path/filepath"
)

// ExportStem returns the per-experiment file-name stem used by the
// sweep exports: app_scheme_procs_topology.
func ExportStem(exp Experiment) string {
	topo := exp.Topology
	if topo == "" {
		topo = "hypercube"
	}
	return fmt.Sprintf("%s_%s_%d_%s", exp.App, exp.Protocol, exp.Procs, topo)
}

// WriteExports dumps one experiment's captured trace and time series
// into the export directories (either may be empty to skip), one file
// per grid point: <stem>.trace.json (Chrome trace-event format) and
// <stem>.timeseries.csv. It is safe to call concurrently for distinct
// experiments — each grid point owns its files.
func WriteExports(exp Experiment, r *Result, traceDir, tsDir string) error {
	if r == nil || r.Probe == nil {
		return nil
	}
	stem := ExportStem(exp)
	if r.Probe.Trace != nil && traceDir != "" {
		f, err := os.Create(filepath.Join(traceDir, stem+".trace.json"))
		if err != nil {
			return err
		}
		if err := r.Probe.Trace.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if r.Probe.Sampler != nil && tsDir != "" {
		f, err := os.Create(filepath.Join(tsDir, stem+".timeseries.csv"))
		if err != nil {
			return err
		}
		if err := r.Probe.Sampler.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// WriteKProfTrace dumps one experiment's kernel-profile timeline as
// <stem>.kprof.trace.json into traceDir — per-lane wave tracks plus
// the coordinator track, loadable in Perfetto next to the protocol
// trace. No-op when the experiment carried no profile or ran on the
// sequential kernel (nothing recorded).
func WriteKProfTrace(exp Experiment, traceDir string) error {
	if exp.KProf == nil || traceDir == "" || exp.KProf.Shards() == 0 {
		return nil
	}
	f, err := os.Create(filepath.Join(traceDir, ExportStem(exp)+".kprof.trace.json"))
	if err != nil {
		return err
	}
	if err := exp.KProf.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
